package workload

import (
	"strings"
	"testing"
)

func TestStatsBasic(t *testing.T) {
	tr, _ := NewTrace("s", []Job{
		{ID: 1, Submit: 0, Runtime: 100, Walltime: 200, Procs: 2, Site: "a"},
		{ID: 2, Submit: 100, Runtime: 300, Walltime: 200, Procs: 4, Site: "b"},
		{ID: 3, Submit: 200, Runtime: 50, Walltime: 100, Procs: 6, Site: "a"},
	})
	s := Stats(tr)
	if s.Jobs != 3 {
		t.Fatalf("Jobs = %d", s.Jobs)
	}
	if s.JobsPerSite["a"] != 2 || s.JobsPerSite["b"] != 1 {
		t.Fatalf("JobsPerSite = %v", s.JobsPerSite)
	}
	if s.MeanProcs != 4 {
		t.Fatalf("MeanProcs = %v, want 4", s.MeanProcs)
	}
	if s.MaxProcs != 6 {
		t.Fatalf("MaxProcs = %v", s.MaxProcs)
	}
	if s.BadJobs != 1 {
		t.Fatalf("BadJobs = %d, want 1 (job 2 exceeds its walltime)", s.BadJobs)
	}
	if s.SpanSeconds != 200 {
		t.Fatalf("SpanSeconds = %d", s.SpanSeconds)
	}
}

func TestStatsEmptyTrace(t *testing.T) {
	s := Stats(&Trace{Name: "empty"})
	if s.Jobs != 0 || s.MeanProcs != 0 || s.MeanRuntime != 0 {
		t.Fatalf("empty stats not zeroed: %+v", s)
	}
}

func TestFormatTable1Layout(t *testing.T) {
	out := workloadFormatTable1ForTest()
	if !strings.Contains(out, "Month/Site") {
		t.Fatal("header missing")
	}
	if !strings.Contains(out, "January") || !strings.Contains(out, "June") {
		t.Fatal("month rows missing")
	}
	if !strings.Contains(out, "36041") {
		t.Fatal("April total (36041) missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Fatalf("table has %d lines, want header + 6 months", len(lines))
	}
}

func workloadFormatTable1ForTest() string {
	return FormatTable1(Table1Counts())
}

func TestSiteCountsSortedAndComplete(t *testing.T) {
	tr, _ := NewTrace("s", []Job{
		{ID: 1, Submit: 0, Runtime: 1, Walltime: 10, Procs: 1, Site: "zeta"},
		{ID: 2, Submit: 1, Runtime: 1, Walltime: 10, Procs: 1, Site: "alpha"},
		{ID: 3, Submit: 2, Runtime: 1, Walltime: 10, Procs: 1, Site: "alpha"},
	})
	counts := SiteCounts(tr)
	if len(counts) != 2 {
		t.Fatalf("got %d sites", len(counts))
	}
	if counts[0].Site != "alpha" || counts[0].Jobs != 2 {
		t.Fatalf("first site = %+v, want alpha/2", counts[0])
	}
	if counts[1].Site != "zeta" || counts[1].Jobs != 1 {
		t.Fatalf("second site = %+v, want zeta/1", counts[1])
	}
}

func TestStatsOverestimateAboveOne(t *testing.T) {
	tr, err := GenerateSite(testProfile(400), 21)
	if err != nil {
		t.Fatal(err)
	}
	s := Stats(tr)
	if s.MeanOverestimate <= 1.0 {
		t.Fatalf("mean walltime over-estimation = %v, want > 1 (users over-request)", s.MeanOverestimate)
	}
	if s.MeanWalltime <= s.MeanRuntime {
		t.Fatalf("mean walltime %v not larger than mean runtime %v", s.MeanWalltime, s.MeanRuntime)
	}
}
