// Package faultinject installs seeded fault plans into campaign runner
// workers. A Plan is derived entirely from one uint64 seed — which task
// indexes are faulted and how — and implements runner.Hook, so the same
// seed always injects the same faults into the same tasks no matter how
// many workers execute the campaign: a failing fault-tolerance run is
// replayable the same way a failing fuzz scenario is.
//
// Four fault kinds cover the runner's recovery paths:
//
//   - Panic: the attempt panics before the task runs — the worker must
//     recover it into a *runner.TaskError and quarantine its simulator.
//   - Transient: the first Failures attempts fail with a
//     runner.Transient-marked error — retries must converge to the task's
//     normal, bit-identical result.
//   - Slow: the attempt blocks until the per-task deadline fires — the
//     runner must record a timeout and move on.
//   - PoisonReset: the attempt poisons the worker's pooled simulator
//     (core.Simulator.Poison simulates a broken Reset: every later run on
//     it perturbs its result) and then panics. Only the quarantine rule —
//     a panicked simulator never executes another task — keeps the
//     contamination out of every later task on that worker; a runner that
//     kept the simulator would produce digest divergences the harness
//     fault oracle catches.
//
// Expected computes the exact RunStats a plan must produce, so the oracle
// can require counter-for-counter equality, not just plausibility.
package faultinject

import (
	"context"
	"fmt"
	"sort"

	"gridrealloc/internal/core"
	"gridrealloc/internal/runner"
	"gridrealloc/internal/stats"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// None leaves the task alone.
	None Kind = iota
	// Panic panics on the task's first attempt.
	Panic
	// Transient fails the first Failures attempts with a retryable error.
	Transient
	// Slow blocks the attempt until its context (the per-task deadline or
	// the campaign's cancellation) fires.
	Slow
	// PoisonReset poisons the worker's simulator, then panics.
	PoisonReset
)

// String names the kind for reports and errors.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Transient:
		return "transient"
	case Slow:
		return "slow"
	case PoisonReset:
		return "poison-reset"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fault is one planned fault on one task index.
type Fault struct {
	Kind Kind
	// Failures is how many leading attempts fail (Transient only).
	Failures int
}

// Plan assigns faults to task indexes of an n-task campaign. It is derived
// deterministically from its seed and is safe for concurrent use by runner
// workers: all state is written at construction and only read afterwards.
type Plan struct {
	seed   uint64
	n      int
	faults map[int]Fault // by task index, for the hot per-attempt lookup
	order  []int         // faulted indexes, ascending, for deterministic iteration
}

// NewPlan derives the fault plan for an n-task campaign from seed: faulted
// distinct task indexes are drawn, and fault kinds cycle deterministically
// through Panic, Transient, Slow, PoisonReset (in that order of
// assignment), so any plan with at least four faults exercises every
// recovery path. faulted is clamped to [0, n].
func NewPlan(seed uint64, n, faulted int) *Plan {
	if faulted > n {
		faulted = n
	}
	if faulted < 0 {
		faulted = 0
	}
	p := &Plan{seed: seed, n: n, faults: make(map[int]Fault, faulted)}
	if n == 0 || faulted == 0 {
		return p
	}
	// A distinct RNG stream from the scenario generator's, so fault
	// placement never correlates with scenario content.
	rng := stats.NewRNG(seed ^ 0xfa17_1e57_5eed_c0de)
	kinds := [...]Kind{Panic, Transient, Slow, PoisonReset}
	for len(p.faults) < faulted {
		i := rng.Intn(n)
		if _, dup := p.faults[i]; dup {
			continue
		}
		f := Fault{Kind: kinds[len(p.faults)%len(kinds)]}
		if f.Kind == Transient {
			f.Failures = 1 + rng.Intn(2)
		}
		p.faults[i] = f
		p.order = append(p.order, i)
	}
	sort.Ints(p.order)
	return p
}

// Seed returns the seed the plan was derived from.
func (p *Plan) Seed() uint64 { return p.seed }

// Tasks returns the campaign size the plan was built for.
func (p *Plan) Tasks() int { return p.n }

// Fault returns the planned fault for task i (Kind None when unfaulted).
func (p *Plan) Fault(i int) Fault { return p.faults[i] }

// FaultedIndexes returns the faulted task indexes in ascending order.
func (p *Plan) FaultedIndexes() []int {
	out := make([]int, len(p.order))
	copy(out, p.order)
	return out
}

// CountByKind returns how many planned faults have the given kind.
func (p *Plan) CountByKind(k Kind) int {
	n := 0
	for _, i := range p.order {
		if p.faults[i].Kind == k {
			n++
		}
	}
	return n
}

// Expected computes the exact RunStats an uncancelled campaign running
// under this plan must produce, given the runner's MaxRetries setting:
// panics and poison-resets each fail once and quarantine one simulator,
// transients retry Failures times and then converge (or fail once retries
// are exhausted), slow tasks time out, and everything else completes.
func (p *Plan) Expected(maxRetries int) runner.RunStats {
	out := runner.RunStats{Tasks: int64(p.n), Completed: int64(p.n - len(p.faults))}
	for _, i := range p.order {
		switch f := p.faults[i]; f.Kind {
		case Panic, PoisonReset:
			out.RecoveredPanics++
			out.DiscardedSims++
			out.Failed++
		case Transient:
			if f.Failures <= maxRetries {
				out.Retries += int64(f.Failures)
				out.Completed++
			} else {
				out.Retries += int64(maxRetries)
				out.Failed++
			}
		case Slow:
			out.Timeouts++
			out.Failed++
		}
	}
	return out
}

// BeforeAttempt implements runner.Hook: it injects the planned fault for
// the given task attempt. Slow faults require the campaign to set
// Options.TaskTimeout, otherwise they block until campaign cancellation.
func (p *Plan) BeforeAttempt(ctx context.Context, worker, task, attempt int, sim *core.Simulator) error {
	f := p.faults[task]
	switch f.Kind {
	case Panic:
		if attempt == 0 {
			panic(fmt.Sprintf("faultinject: planned panic in task %d (worker %d)", task, worker))
		}
	case Transient:
		if attempt < f.Failures {
			return runner.Transient(fmt.Errorf("faultinject: planned transient fault in task %d (attempt %d of %d)",
				task, attempt+1, f.Failures))
		}
	case Slow:
		<-ctx.Done()
		return fmt.Errorf("faultinject: planned slow task %d gave up: %w", task, ctx.Err())
	case PoisonReset:
		if attempt == 0 {
			sim.Poison()
			panic(fmt.Sprintf("faultinject: planned poison-reset panic in task %d (worker %d)", task, worker))
		}
	}
	return nil
}
