package faultinject

import (
	"context"
	"testing"

	"gridrealloc/internal/runner"
)

// TestNewPlanDeterministic pins the replay contract: the same seed always
// derives the same plan, and different seeds place faults differently.
func TestNewPlanDeterministic(t *testing.T) {
	a := NewPlan(42, 100, 10)
	b := NewPlan(42, 100, 10)
	ai, bi := a.FaultedIndexes(), b.FaultedIndexes()
	if len(ai) != 10 || len(bi) != 10 {
		t.Fatalf("faulted counts: %d, %d", len(ai), len(bi))
	}
	for k := range ai {
		if ai[k] != bi[k] || a.Fault(ai[k]) != b.Fault(bi[k]) {
			t.Fatalf("plans from the same seed diverge at %d", k)
		}
	}
	c := NewPlan(43, 100, 10)
	same := true
	for k, i := range c.FaultedIndexes() {
		if i != ai[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds placed faults identically")
	}
}

// TestNewPlanKindCoverage checks the cycling assignment: any plan with at
// least four faults carries every fault kind, so every recovery path runs.
func TestNewPlanKindCoverage(t *testing.T) {
	p := NewPlan(7, 64, 4)
	for _, k := range []Kind{Panic, Transient, Slow, PoisonReset} {
		if p.CountByKind(k) != 1 {
			t.Fatalf("kind %s appears %d times in a 4-fault plan", k, p.CountByKind(k))
		}
	}
	for _, i := range p.FaultedIndexes() {
		if f := p.Fault(i); f.Kind == Transient && (f.Failures < 1 || f.Failures > 2) {
			t.Fatalf("transient at %d has %d failures", i, f.Failures)
		}
	}
	if p.Fault(-1).Kind != None {
		t.Fatal("out-of-range index reported a fault")
	}
}

// TestNewPlanClamps covers the degenerate shapes.
func TestNewPlanClamps(t *testing.T) {
	if got := len(NewPlan(1, 5, 9).FaultedIndexes()); got != 5 {
		t.Fatalf("faulted > n not clamped: %d", got)
	}
	if got := len(NewPlan(1, 5, -2).FaultedIndexes()); got != 0 {
		t.Fatalf("negative faulted not clamped: %d", got)
	}
	if got := len(NewPlan(1, 0, 3).FaultedIndexes()); got != 0 {
		t.Fatalf("empty campaign got faults: %d", got)
	}
}

// TestExpectedMatchesFaults pins the oracle arithmetic fault by fault.
func TestExpectedMatchesFaults(t *testing.T) {
	p := NewPlan(42, 50, 8)
	want := runner.RunStats{Tasks: 50}
	var transientRetries int64
	for _, i := range p.FaultedIndexes() {
		switch f := p.Fault(i); f.Kind {
		case Panic, PoisonReset:
			want.RecoveredPanics++
			want.DiscardedSims++
			want.Failed++
		case Transient:
			transientRetries += int64(f.Failures)
			want.Completed++
		case Slow:
			want.Timeouts++
			want.Failed++
		}
	}
	want.Retries = transientRetries
	want.Completed += int64(50 - len(p.FaultedIndexes()))
	if got := p.Expected(3); got != want {
		t.Fatalf("Expected(3) = %+v, want %+v", got, want)
	}
	// With zero retries allowed, every transient fails after maxRetries
	// retries were burned (none here) instead of converging.
	zero := p.Expected(0)
	if zero.Retries != 0 {
		t.Fatalf("Expected(0) counts retries: %+v", zero)
	}
	if zero.Failed != want.Failed+int64(p.CountByKind(Transient)) {
		t.Fatalf("Expected(0) failed = %d", zero.Failed)
	}
}

// TestBeforeAttemptTransient drives the hook directly through its transient
// schedule; the panic and poison paths are exercised end to end by the
// runner and harness tests.
func TestBeforeAttemptTransient(t *testing.T) {
	p := &Plan{n: 4, faults: map[int]Fault{2: {Kind: Transient, Failures: 2}}, order: []int{2}}
	ctx := context.Background()
	for attempt := 0; attempt < 2; attempt++ {
		err := p.BeforeAttempt(ctx, 0, 2, attempt, nil)
		if err == nil || !runner.IsTransient(err) {
			t.Fatalf("attempt %d: err = %v", attempt, err)
		}
	}
	if err := p.BeforeAttempt(ctx, 0, 2, 2, nil); err != nil {
		t.Fatalf("attempt past the failure budget still fails: %v", err)
	}
	if err := p.BeforeAttempt(ctx, 0, 1, 0, nil); err != nil {
		t.Fatalf("unfaulted task got an error: %v", err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", Panic: "panic", Transient: "transient",
		Slow: "slow", PoisonReset: "poison-reset", Kind(99): "kind(99)",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", uint8(k), k.String(), want)
		}
	}
}
