// Package leakcheck asserts that an operation left no goroutines behind.
// The campaign runner's cancellation contract promises that StreamCtx and
// RunCtx return only after every worker goroutine has exited; the runner's
// cancellation tests and the harness fault oracle hold it to that promise
// by snapshotting the goroutine count before a campaign and checking it
// settled back afterwards.
//
// The check is count-based and tolerant of unrelated background goroutines
// only in one direction: anything running at snapshot time is allowed to
// keep running, but the count may not grow. Because exiting goroutines are
// observed asynchronously (a worker that returned may not have been reaped
// yet), Check polls with a short backoff before declaring a leak, and the
// failure message carries the full stack dump so the leaked goroutine is
// identifiable without re-running.
package leakcheck

import (
	"fmt"
	"runtime"
	"time"
)

// Snapshot records the goroutine population at one instant.
type Snapshot struct {
	goroutines int
}

// Take snapshots the current goroutine count. Call it before starting the
// operation under test.
func Take() Snapshot {
	return Snapshot{goroutines: runtime.NumGoroutine()}
}

// Check verifies the goroutine count settled back to at most the snapshot
// level, polling for up to roughly two seconds to absorb reaping lag. On
// failure it returns an error carrying every goroutine's stack.
func (s Snapshot) Check() error {
	const (
		attempts = 100
		pause    = 20 * time.Millisecond
	)
	var n int
	for i := 0; i < attempts; i++ {
		n = runtime.NumGoroutine()
		if n <= s.goroutines {
			return nil
		}
		time.Sleep(pause)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Errorf("leakcheck: %d goroutines still running, %d at snapshot; stacks:\n%s",
		n, s.goroutines, buf)
}
