package leakcheck

import (
	"strings"
	"testing"
)

func TestCheckPassesWhenNothingLeaks(t *testing.T) {
	snap := Take()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	if err := snap.Check(); err != nil {
		t.Fatalf("exited goroutine reported as leak: %v", err)
	}
}

func TestCheckReportsLeak(t *testing.T) {
	snap := Take()
	block := make(chan struct{})
	defer close(block)
	go func() { <-block }() // survives past every Check poll
	err := snap.Check()
	if err == nil {
		t.Fatal("leaked goroutine not detected")
	}
	if !strings.Contains(err.Error(), "leakcheck_test.go") {
		t.Fatalf("leak report does not carry the leaked goroutine's stack:\n%v", err)
	}
}
