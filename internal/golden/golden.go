// Package golden compares test output against committed golden files under
// the calling package's testdata directory, shared by every package with
// rendering to pin. Each importing test binary gains an -update flag:
//
//	go test ./internal/experiment -run TestGolden -update
//
// rewrites the files with the current output; without it, any difference
// fails the test with both versions printed.
package golden

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// Compare asserts got against testdata/<name>, rewriting the file when the
// test binary runs with -update.
func Compare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (re-run with -update if the change is intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
