package gridrealloc_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, plus the Section 4.3 algorithm comparison, the ablation studies
// called out in DESIGN.md and micro-benchmarks of the hot paths (profile
// operations, completion-time estimation, heuristic selection).
//
// The table benchmarks regenerate the corresponding table on a reduced slice
// of the workload (the submission window scales with the slice, so the
// offered load — and therefore the qualitative shape of the numbers —
// matches the full-scale campaign). Run the full-scale campaign with
// cmd/experiments -fraction 1.0; run these with:
//
//	go test -bench=. -benchmem
//
// Each table benchmark reports the table's average cell value as a custom
// metric so regressions in behaviour (not only in speed) are visible.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	gridrealloc "gridrealloc"
	"gridrealloc/internal/batch"
	"gridrealloc/internal/core"
	"gridrealloc/internal/experiment"
	"gridrealloc/internal/gantt"
	"gridrealloc/internal/harness"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/runner"
	"gridrealloc/internal/server"
	"gridrealloc/internal/workload"
)

// benchFraction is the workload slice used by the table benchmarks. The
// submission window scales with it, so the offered load matches full scale.
const benchFraction = 0.01

// benchSeed keeps every benchmark deterministic.
const benchSeed = 42

// benchTable regenerates one of the paper's tables (2..17) on the reduced
// workload and reports its mean cell value.
func benchTable(b *testing.B, id int) {
	b.Helper()
	spec, err := experiment.TableByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var lastMean float64
	for i := 0; i < b.N; i++ {
		camp, err := experiment.Run(experiment.CampaignConfig{
			Fraction:        benchFraction,
			Seed:            benchSeed,
			Heterogeneities: []platform.Heterogeneity{spec.Heterogeneity},
			Algorithms:      []core.Algorithm{spec.Algorithm},
		})
		if err != nil {
			b.Fatal(err)
		}
		table, err := camp.BuildTable(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("table %d has no rows", id)
		}
		sum, n := 0.0, 0
		for _, row := range table.Rows {
			for j, v := range row.Values {
				if !row.Missing[j] {
					sum += v
					n++
				}
			}
		}
		if n > 0 {
			lastMean = sum / float64(n)
		}
	}
	b.ReportMetric(lastMean, "mean_cell")
}

// One benchmark per result table of the paper.

func BenchmarkTable02ImpactedHomogeneous(b *testing.B)            { benchTable(b, 2) }
func BenchmarkTable03ImpactedHeterogeneous(b *testing.B)          { benchTable(b, 3) }
func BenchmarkTable04ReallocationsHomogeneous(b *testing.B)       { benchTable(b, 4) }
func BenchmarkTable05ReallocationsHeterogeneous(b *testing.B)     { benchTable(b, 5) }
func BenchmarkTable06EarlierHomogeneous(b *testing.B)             { benchTable(b, 6) }
func BenchmarkTable07EarlierHeterogeneous(b *testing.B)           { benchTable(b, 7) }
func BenchmarkTable08ResponseHomogeneous(b *testing.B)            { benchTable(b, 8) }
func BenchmarkTable09ResponseHeterogeneous(b *testing.B)          { benchTable(b, 9) }
func BenchmarkTable10ImpactedCancelHomogeneous(b *testing.B)      { benchTable(b, 10) }
func BenchmarkTable11ImpactedCancelHeterogeneous(b *testing.B)    { benchTable(b, 11) }
func BenchmarkTable12ReallocationsCancelHomogeneous(b *testing.B) { benchTable(b, 12) }
func BenchmarkTable13ReallocationsCancelHeterogeneous(b *testing.B) {
	benchTable(b, 13)
}
func BenchmarkTable14EarlierCancelHomogeneous(b *testing.B)    { benchTable(b, 14) }
func BenchmarkTable15EarlierCancelHeterogeneous(b *testing.B)  { benchTable(b, 15) }
func BenchmarkTable16ResponseCancelHomogeneous(b *testing.B)   { benchTable(b, 16) }
func BenchmarkTable17ResponseCancelHeterogeneous(b *testing.B) { benchTable(b, 17) }

// BenchmarkTable01TraceGeneration regenerates Table 1: the six monthly
// traces with the paper's per-site job counts (at the benchmark fraction).
func BenchmarkTable01TraceGeneration(b *testing.B) {
	jobs := 0
	for i := 0; i < b.N; i++ {
		jobs = 0
		for _, m := range workload.Months() {
			traces, err := workload.MonthScenario(m, benchFraction, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			for _, tr := range traces {
				jobs += tr.Len()
			}
		}
	}
	b.ReportMetric(float64(jobs), "jobs")
}

// BenchmarkComparisonAlg1VsAlg2 regenerates the Section 4.3 comparison
// between the two reallocation algorithms.
func BenchmarkComparisonAlg1VsAlg2(b *testing.B) {
	wins := 0
	for i := 0; i < b.N; i++ {
		camp, err := experiment.Run(experiment.CampaignConfig{
			Fraction:  benchFraction,
			Seed:      benchSeed,
			Scenarios: []workload.ScenarioName{"jan", "apr", "pwa-g5k"},
			Heuristics: []core.Heuristic{
				core.MCT(), core.MinMin(),
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		wins = 0
		for _, row := range camp.CompareAlgorithms() {
			if row.CancellationIsBetter {
				wins++
			}
		}
	}
	b.ReportMetric(float64(wins), "cancellation_wins")
}

// figureScenario builds the two-cluster illustrative scenario shared by the
// figure benchmarks.
func figureScenario(b *testing.B, policy batch.Policy) []*server.Server {
	b.Helper()
	c1, err := server.New(platform.ClusterSpec{Name: "cluster-1", Cores: 4, Speed: 1}, policy)
	if err != nil {
		b.Fatal(err)
	}
	c2, err := server.New(platform.ClusterSpec{Name: "cluster-2", Cores: 4, Speed: 1}, policy)
	if err != nil {
		b.Fatal(err)
	}
	submit := func(s *server.Server, id int, runtime, walltime int64, procs int) {
		j := workload.Job{ID: id, Submit: 0, Runtime: runtime, Walltime: walltime, Procs: procs}
		if err := s.Submit(j, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	submit(c1, 1, 40, 40, 1)
	submit(c1, 2, 60, 60, 1)
	submit(c1, 3, 20, 80, 1) // finishes early
	submit(c1, 4, 50, 50, 2) // waits, candidate for reallocation
	submit(c1, 5, 40, 40, 2) // waits, candidate for reallocation
	submit(c2, 6, 50, 50, 1)
	submit(c2, 7, 35, 35, 1)
	for _, s := range []*server.Server{c1, c2} {
		if _, err := s.Scheduler().Advance(30); err != nil {
			b.Fatal(err)
		}
	}
	return []*server.Server{c1, c2}
}

// BenchmarkFigure1ReallocationExample regenerates Figure 1: the reallocation
// of waiting tasks from a cluster with an early finish to an idle cluster,
// rendered as ASCII Gantt charts.
func BenchmarkFigure1ReallocationExample(b *testing.B) {
	moves := 0
	for i := 0; i < b.N; i++ {
		servers := figureScenario(b, batch.CBF)
		agent, err := core.NewAgent(servers, core.MCTMapping(), core.ReallocConfig{
			Algorithm: core.WithoutCancellation,
			Heuristic: core.MCT(),
			MinGain:   1,
		})
		if err != nil {
			b.Fatal(err)
		}
		moves, err = agent.Reallocate(30)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range servers {
			snap := s.Scheduler().Snapshot()
			chart := gantt.Chart{Title: s.Name(), Cores: s.Spec().Cores}
			for _, r := range snap.Running {
				chart.Bars = append(chart.Bars, gantt.Bar{Label: fmt.Sprint(r.JobID), Start: r.Start, End: r.End, Procs: r.Procs})
			}
			for _, w := range snap.Waiting {
				chart.Bars = append(chart.Bars, gantt.Bar{Label: fmt.Sprint(w.JobID), Start: w.Start, End: w.End, Procs: w.Procs, Waiting: true})
			}
			if out := chart.Render(0, 160, 2); len(out) == 0 {
				b.Fatal("empty chart")
			}
		}
	}
	b.ReportMetric(float64(moves), "tasks_moved")
}

// BenchmarkFigure2SideEffects regenerates Figure 2: the schedule after a
// reallocation where an early finish delays a large job behind the inserted
// task while other jobs advance.
func BenchmarkFigure2SideEffects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		servers := figureScenario(b, batch.CBF)
		agent, err := core.NewAgent(servers, core.MCTMapping(), core.ReallocConfig{
			Algorithm: core.WithoutCancellation,
			Heuristic: core.MaxGain(),
			MinGain:   1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := agent.Reallocate(30); err != nil {
			b.Fatal(err)
		}
		// The early finish that produces the side effect.
		for _, s := range servers {
			if _, err := s.Scheduler().Advance(60); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablation benchmarks -------------------------------------------------

// ablationRun executes one April-slice simulation with the given knobs and
// returns the relative response time against the no-reallocation baseline.
func ablationRun(b *testing.B, mutate func(*gridrealloc.ScenarioConfig)) float64 {
	b.Helper()
	trace, err := gridrealloc.GenerateScenario("apr", 0.02, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	base := gridrealloc.ScenarioConfig{
		Scenario:      "apr",
		Heterogeneity: "heterogeneous",
		Policy:        "CBF",
		Trace:         trace,
	}
	baseline, err := gridrealloc.RunScenario(base)
	if err != nil {
		b.Fatal(err)
	}
	cfg := base
	cfg.Algorithm = "realloc-cancel"
	cfg.Heuristic = "MinMin"
	mutate(&cfg)
	res, err := gridrealloc.RunScenario(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cmp, err := gridrealloc.Compare(baseline, res)
	if err != nil {
		b.Fatal(err)
	}
	return cmp.RelativeResponseTime
}

// BenchmarkAblationReallocationPeriod quantifies the paper's choice of an
// hourly reallocation event against faster and slower periods.
func BenchmarkAblationReallocationPeriod(b *testing.B) {
	for _, period := range []int64{900, 3600, 14400} {
		period := period
		b.Run(fmt.Sprintf("period_%ds", period), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				rel = ablationRun(b, func(c *gridrealloc.ScenarioConfig) { c.ReallocPeriodSeconds = period })
			}
			b.ReportMetric(rel, "rel_response")
		})
	}
}

// BenchmarkAblationImprovementThreshold quantifies the one-minute minimum
// gain of Algorithm 1 against no threshold and a ten-minute threshold.
func BenchmarkAblationImprovementThreshold(b *testing.B) {
	for _, gain := range []int64{1, 60, 600} {
		gain := gain
		b.Run(fmt.Sprintf("min_gain_%ds", gain), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				rel = ablationRun(b, func(c *gridrealloc.ScenarioConfig) {
					c.Algorithm = "realloc"
					c.MinGainSeconds = gain
				})
			}
			b.ReportMetric(rel, "rel_response")
		})
	}
}

// BenchmarkAblationMappingPolicy compares the MCT initial mapping used by
// the paper against Random and RoundRobin mapping (the degraded modes a
// middleware falls back to without monitoring).
func BenchmarkAblationMappingPolicy(b *testing.B) {
	for _, mapping := range []string{"MCT", "Random", "RoundRobin"} {
		mapping := mapping
		b.Run(mapping, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				trace, err := gridrealloc.GenerateScenario("mar", 0.02, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				res, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
					Scenario:      "mar",
					Heterogeneity: "heterogeneous",
					Policy:        "CBF",
					Trace:         trace,
					Mapping:       mapping,
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = gridrealloc.Summarize(res).MeanResponseTime
			}
			b.ReportMetric(mean, "mean_response_s")
		})
	}
}

// BenchmarkAblationBatchPolicy measures the batch substrate itself: the same
// workload scheduled by FCFS and by CBF, without any reallocation.
func BenchmarkAblationBatchPolicy(b *testing.B) {
	for _, policy := range []string{"FCFS", "CBF"} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				trace, err := gridrealloc.GenerateScenario("apr", 0.02, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				res, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
					Scenario:      "apr",
					Heterogeneity: "homogeneous",
					Policy:        policy,
					Trace:         trace,
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = gridrealloc.Summarize(res).MeanResponseTime
			}
			b.ReportMetric(mean, "mean_response_s")
		})
	}
}

// --- Micro-benchmarks of the hot paths -----------------------------------

// loadedScheduler builds a batch scheduler with depth waiting jobs.
func loadedScheduler(b *testing.B, policy batch.Policy, depth int) *batch.Scheduler {
	b.Helper()
	s, err := batch.NewScheduler(platform.ClusterSpec{Name: "bench", Cores: 64, Speed: 1}, policy)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < depth; i++ {
		j := workload.Job{ID: i + 1, Submit: 0, Runtime: 600, Walltime: 1800, Procs: 1 + i%32}
		if err := s.Submit(j, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkBatchSubmitCancel measures one submission followed by its
// cancellation (each triggering a plan rebuild) at various queue depths —
// the exact request pair a reallocation move issues against a cluster.
func BenchmarkBatchSubmitCancel(b *testing.B) {
	for _, depth := range []int{10, 100, 1000} {
		depth := depth
		b.Run(fmt.Sprintf("depth_%d", depth), func(b *testing.B) {
			s := loadedScheduler(b, batch.CBF, depth)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := workload.Job{ID: depth + i + 1, Submit: 0, Runtime: 600, Walltime: 1800, Procs: 4}
				if err := s.Submit(j, 0, 0); err != nil {
					b.Fatal(err)
				}
				if _, _, err := s.Cancel(j.ID, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchEstimateCompletion measures the middleware's ECT query, the
// operation the reallocation heuristics issue O(n^2) times per pass.
func BenchmarkBatchEstimateCompletion(b *testing.B) {
	for _, depth := range []int{10, 100, 1000} {
		depth := depth
		for _, policy := range []batch.Policy{batch.FCFS, batch.CBF} {
			policy := policy
			b.Run(fmt.Sprintf("%s_depth_%d", policy, depth), func(b *testing.B) {
				s := loadedScheduler(b, policy, depth)
				probe := workload.Job{ID: 999999, Submit: 0, Runtime: 600, Walltime: 1800, Procs: 8}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.EstimateCompletion(probe, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBatchMassCancel measures the cancel-all pattern Algorithm 2
// issues at the start of every reallocation pass: every waiting job is
// cancelled back-to-back, then the queue is observed once. A scheduler that
// re-plans eagerly after every cancellation pays O(n) rebuilds of O(n) work
// each; a lazily re-planning scheduler pays one rebuild at the final
// observation.
func BenchmarkBatchMassCancel(b *testing.B) {
	for _, depth := range []int{100, 1000} {
		depth := depth
		b.Run(fmt.Sprintf("depth_%d", depth), func(b *testing.B) {
			probe := workload.Job{ID: 999999, Submit: 0, Runtime: 600, Walltime: 1800, Procs: 8}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := loadedScheduler(b, batch.CBF, depth)
				b.StartTimer()
				for id := 1; id <= depth; id++ {
					if _, _, err := s.Cancel(id, 0); err != nil {
						b.Fatal(err)
					}
				}
				// Observe the queue once so lazy implementations pay their
				// deferred re-plan inside the timed region.
				if _, err := s.EstimateCompletion(probe, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReallocCancelMonthSweep measures a complete month-scenario
// simulation under Algorithm 2 (realloc-cancel), the workload whose periodic
// sweeps issue the O(waiting-jobs x clusters) ECT queries the incremental
// scheduler is designed to absorb.
func BenchmarkReallocCancelMonthSweep(b *testing.B) {
	trace, err := gridrealloc.GenerateScenario("apr", 0.05, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
			Scenario: "apr", Heterogeneity: "heterogeneous", Policy: "CBF",
			Trace: trace, Algorithm: "realloc-cancel", Heuristic: "MinMin",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchDeepQueueReplan measures a full re-plan of a 10000-job
// queue — the deep-queue regime where the re-plan's allocation behaviour
// and per-job slot-search cost dominate everything else the scheduler does.
func BenchmarkBatchDeepQueueReplan(b *testing.B) {
	s := loadedScheduler(b, batch.CBF, 10000)
	probe := workload.Job{ID: 999999, Submit: 0, Runtime: 600, Walltime: 1800, Procs: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.InvalidatePlan()
		if _, err := s.EstimateCompletion(probe, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// yearTrace builds a year-long workload: twelve copies of the April slice,
// each shifted by one month, with job IDs remapped to stay unique.
func yearTrace(b *testing.B, fraction float64) *workload.Trace {
	b.Helper()
	base, err := gridrealloc.GenerateScenario("apr", fraction, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	const monthSeconds = int64(30 * 24 * 3600)
	jobs := make([]workload.Job, 0, 12*len(base.Jobs))
	id := 1
	for m := 0; m < 12; m++ {
		for _, j := range base.Jobs {
			j.ID = id
			j.Submit += int64(m) * monthSeconds
			id++
			jobs = append(jobs, j)
		}
	}
	tr, err := workload.NewTrace("year", jobs)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkReallocCancelYearSweep measures a year-long simulation under
// Algorithm 2: ~8760 hourly reallocation events over twelve month-shaped
// load waves, the sustained-sweep regime the month benchmark cannot reach.
func BenchmarkReallocCancelYearSweep(b *testing.B) {
	trace := yearTrace(b, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
			Scenario: "apr", Heterogeneity: "heterogeneous", Policy: "CBF",
			Trace: trace, Algorithm: "realloc-cancel", Heuristic: "MinMin",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOutageHeavyRealloc measures the April slice with a long
// unannounced outage taking out the first cluster while Algorithm 2 keeps
// requeuing and re-placing the displaced jobs — the capacity-dynamics path
// (reveal, displacement, head-of-queue requeue, plan invalidation) under
// reallocation pressure.
func BenchmarkOutageHeavyRealloc(b *testing.B) {
	trace, err := gridrealloc.GenerateScenario("apr", 0.05, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
			Scenario: "apr", Heterogeneity: "heterogeneous", Policy: "CBF",
			Trace: trace, Algorithm: "realloc-cancel", Heuristic: "MinMin",
			OutageStartSeconds:    36000,
			OutageDurationSeconds: 400000,
			OutageSeverity:        1.0,
			OutagePolicy:          "requeue",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReallocationPassDeepQueueParallel measures one Algorithm 2 pass
// over a six-cluster platform with a deep shared backlog, with the
// per-cluster sweep fan-out forced off and on. On multi-core machines the
// spread between the two sub-benchmarks is the fan-out's wall-clock win;
// results are bit-identical either way (TestABDigestParallelSweep).
func BenchmarkReallocationPassDeepQueueParallel(b *testing.B) {
	build := func() []*server.Server {
		servers := make([]*server.Server, 0, 6)
		id := 100000
		for c := 0; c < 6; c++ {
			srv, err := server.New(platform.ClusterSpec{Name: fmt.Sprintf("c%d", c), Cores: 64, Speed: 1 + float64(c)*0.1}, batch.CBF)
			if err != nil {
				b.Fatal(err)
			}
			blocker := workload.Job{ID: id, Submit: 0, Runtime: 50000, Walltime: 50000, Procs: 64}
			id++
			if err := srv.Submit(blocker, 0, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := srv.Scheduler().Advance(0); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 300; i++ {
				j := workload.Job{ID: c*1000 + i + 1, Submit: int64(i), Runtime: 300, Walltime: 900, Procs: 1 + i%16}
				if err := srv.Submit(j, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
			servers = append(servers, srv)
		}
		return servers
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			core.SetSweepParallelism(workers)
			core.SetSweepParallelThreshold(1)
			defer func() {
				core.SetSweepParallelism(0)
				core.SetSweepParallelThreshold(0)
			}()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				servers := build()
				agent, err := core.NewAgent(servers, core.MCTMapping(), core.ReallocConfig{Algorithm: core.WithCancellation, Heuristic: core.MinMin()})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := agent.Reallocate(10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchEstimateCompletionFromScratch measures the same ECT query
// with the incremental machinery defeated: every query pays a from-scratch
// rebuild of the run profile and a full re-plan of the waiting queue, which
// is what a scheduler without the incremental profile does. The ratio
// against BenchmarkBatchEstimateCompletion is the speedup the incremental
// path buys and is recorded in BENCH_batch.json.
func BenchmarkBatchEstimateCompletionFromScratch(b *testing.B) {
	for _, depth := range []int{10, 100, 1000} {
		depth := depth
		for _, policy := range []batch.Policy{batch.FCFS, batch.CBF} {
			policy := policy
			b.Run(fmt.Sprintf("%s_depth_%d", policy, depth), func(b *testing.B) {
				s := loadedScheduler(b, policy, depth)
				probe := workload.Job{ID: 999999, Submit: 0, Runtime: 600, Walltime: 1800, Procs: 8}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.InvalidateRunProfile()
					s.InvalidatePlan()
					if _, err := s.EstimateCompletion(probe, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestWriteBenchBatchBaseline regenerates BENCH_batch.json, the committed
// baseline of the batch-scheduler hot paths. Run it with:
//
//	WRITE_BENCH_BASELINE=1 go test -run TestWriteBenchBatchBaseline .
//
// and commit the refreshed file alongside any change to the scheduler so
// regressions are visible in review.

// hotPath is one committed hot-path measurement: time and allocation count
// per operation. Allocations are tracked alongside time because the profile
// engine's whole design goal is an allocation-free steady state — a change
// that keeps ns/op but reintroduces per-replan allocations is a regression
// the smoke must catch.
type hotPath struct {
	NsPerOp     float64
	AllocsPerOp float64
}

// measure runs one benchmark closure with allocation tracking and returns
// both metrics.
func measure(fn func(b *testing.B)) hotPath {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	if r.N == 0 {
		return hotPath{}
	}
	return hotPath{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: float64(r.AllocsPerOp()),
	}
}

// measureBatchBaseline reruns the committed hot-path measurements and
// returns them keyed exactly as in BENCH_batch.json. It is shared by the
// baseline writer and the CI bench smoke.
func measureBatchBaseline(t *testing.T) map[string]hotPath {
	t.Helper()
	probe := workload.Job{ID: 999999, Submit: 0, Runtime: 600, Walltime: 1800, Procs: 8}
	cached := measure(func(b *testing.B) {
		s := loadedScheduler(b, batch.CBF, 1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.EstimateCompletion(probe, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	scratch := measure(func(b *testing.B) {
		s := loadedScheduler(b, batch.CBF, 1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.InvalidateRunProfile()
			s.InvalidatePlan()
			if _, err := s.EstimateCompletion(probe, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The re-plan path: every op forces a full re-plan of the 1000-job
	// queue, the operation the double-buffered profiles make allocation-free.
	replan := measure(func(b *testing.B) {
		s := loadedScheduler(b, batch.CBF, 1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.InvalidatePlan()
			if _, err := s.EstimateCompletion(probe, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	submitCancel := measure(func(b *testing.B) {
		s := loadedScheduler(b, batch.CBF, 1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := workload.Job{ID: 1000 + i + 1, Submit: 0, Runtime: 600, Walltime: 1800, Procs: 4}
			if err := s.Submit(j, 0, 0); err != nil {
				b.Fatal(err)
			}
			if _, _, err := s.Cancel(j.ID, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	massCancel := measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := loadedScheduler(b, batch.CBF, 1000)
			b.StartTimer()
			for id := 1; id <= 1000; id++ {
				if _, _, err := s.Cancel(id, 0); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := s.EstimateCompletion(probe, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The deep-queue re-plan: the 10000-job regime where per-job slot-search
	// cost dominates, which the profile's bucket summaries make sublinear.
	deepReplan := measure(func(b *testing.B) {
		s := loadedScheduler(b, batch.CBF, 10000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.InvalidatePlan()
			if _, err := s.EstimateCompletion(probe, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The saturated-cluster slot search: every queued job pins 63 of 64
	// cores, so the probe's 8-core window opens only past the entire plan.
	// The zero-prefix firstFree hint cannot help here (every segment keeps
	// one core free); only the bucketed free-core summaries can skip.
	saturated := measure(func(b *testing.B) {
		s, err := batch.NewScheduler(platform.ClusterSpec{Name: "bench", Cores: 64, Speed: 1}, batch.CBF)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			j := workload.Job{ID: i + 1, Submit: 0, Runtime: 600, Walltime: 1800, Procs: 63}
			if err := s.Submit(j, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.EstimateCompletion(probe, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	trace, err := gridrealloc.GenerateScenario("apr", 0.05, benchSeed)
	if err != nil {
		t.Fatal(err)
	}
	monthSweep := measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
				Scenario: "apr", Heterogeneity: "heterogeneous", Policy: "CBF",
				Trace: trace, Algorithm: "realloc-cancel", Heuristic: "MinMin",
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The same month sweep on a pooled simulator: the steady-state regime a
	// campaign worker lives in, where only the escaping Result allocates.
	monthSweepPooled := measure(func(b *testing.B) {
		sim := gridrealloc.NewSimulator()
		cfg := gridrealloc.ScenarioConfig{
			Scenario: "apr", Heterogeneity: "heterogeneous", Policy: "CBF",
			Trace: trace, Algorithm: "realloc-cancel", Heuristic: "MinMin",
		}
		if _, err := sim.RunScenario(cfg); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunScenario(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Campaign throughput: the 72-configuration grid, sequential with a
	// fresh simulator per scenario versus the campaign runner with pooled
	// simulators and one worker per CPU. The smoke derives the campaign
	// speedup from these two.
	grid := grid72Configs()
	gridFresh := measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runGrid72Fresh(b, grid)
		}
	})
	gridPooled := measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gridrealloc.RunScenarios(grid, runtime.GOMAXPROCS(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Reset-vs-fresh construction cost on a scenario small enough that the
	// constructor is a visible share of the run.
	tiny := tinyReuseConfig(t)
	tinyFresh := measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gridrealloc.RunScenario(tiny); err != nil {
				b.Fatal(err)
			}
		}
	})
	tinyPooled := measure(func(b *testing.B) {
		sim := gridrealloc.NewSimulator()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunScenario(tiny); err != nil {
				b.Fatal(err)
			}
		}
	})
	return map[string]hotPath{
		"estimate_completion_cbf_depth_1000":              cached,
		"estimate_completion_from_scratch_cbf_depth_1000": scratch,
		"replan_cbf_depth_1000":                           replan,
		"replan_deep_queue_cbf_depth_10000":               deepReplan,
		"estimate_completion_saturated_cbf_depth_1000":    saturated,
		"submit_cancel_cbf_depth_1000":                    submitCancel,
		"mass_cancel_cbf_depth_1000":                      massCancel,
		"realloc_cancel_month_sweep_apr_5pct":             monthSweep,
		"realloc_cancel_month_sweep_apr_5pct_pooled":      monthSweepPooled,
		"campaign_grid72_fresh_sequential":                gridFresh,
		"campaign_grid72_pooled_parallel":                 gridPooled,
		"sim_tiny_fresh":                                  tinyFresh,
		"sim_tiny_pooled":                                 tinyPooled,
	}
}

func TestWriteBenchBatchBaseline(t *testing.T) {
	if os.Getenv("WRITE_BENCH_BASELINE") == "" {
		t.Skip("set WRITE_BENCH_BASELINE=1 to rewrite BENCH_batch.json")
	}
	measured := measureBatchBaseline(t)
	ns := make(map[string]float64, len(measured))
	allocs := make(map[string]float64, len(measured))
	for name, m := range measured {
		ns[name] = m.NsPerOp
		allocs[name] = m.AllocsPerOp
	}
	cached := ns["estimate_completion_cbf_depth_1000"]
	scratch := ns["estimate_completion_from_scratch_cbf_depth_1000"]
	payload := map[string]any{
		"go":            runtime.Version(),
		"goos":          runtime.GOOS,
		"goarch":        runtime.GOARCH,
		"gomaxprocs":    runtime.GOMAXPROCS(0),
		"benchtime":     "default (testing.Benchmark)",
		"ns_per_op":     ns,
		"allocs_per_op": allocs,
		"derived": map[string]float64{
			"estimate_speedup_vs_from_scratch": scratch / cached,
			// Campaign wall-clock: fresh sequential vs runner with pooled
			// simulators and GOMAXPROCS workers, over the 72-grid. On this
			// writer's machine; the smoke re-derives it at test time and
			// enforces a floor scaled to the machine's GOMAXPROCS.
			"campaign_grid72_parallel_speedup":          ns["campaign_grid72_fresh_sequential"] / ns["campaign_grid72_pooled_parallel"],
			"sim_tiny_reuse_speedup":                    ns["sim_tiny_fresh"] / ns["sim_tiny_pooled"],
			"campaign_grid72_allocs_saved_per_scenario": (allocs["campaign_grid72_fresh_sequential"] - allocs["campaign_grid72_pooled_parallel"]) / 72,
		},
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_batch.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_batch.json: cached=%.0fns scratch=%.0fns (%.1fx), replan=%.0fns/%.0fallocs, mass_cancel=%.0fns, sweep=%.0fns/%.0fallocs",
		cached, scratch, scratch/cached, ns["replan_cbf_depth_1000"], allocs["replan_cbf_depth_1000"],
		ns["mass_cancel_cbf_depth_1000"], ns["realloc_cancel_month_sweep_apr_5pct"], allocs["realloc_cancel_month_sweep_apr_5pct"])
}

// effectiveCPUs estimates the parallelism actually available to this
// process: GOMAXPROCS capped by the Linux cgroup CPU quota when one is set.
// Go 1.24's GOMAXPROCS is not cgroup-aware, so on a 16-core host whose
// container is limited to 2 CPUs it reports 16 — a speedup floor scaled to
// that would fail the smoke on correct code.
func effectiveCPUs() int {
	cpus := runtime.GOMAXPROCS(0)
	if quota, ok := cgroupCPUQuota(); ok && quota < cpus {
		cpus = quota
	}
	if cpus < 1 {
		cpus = 1
	}
	return cpus
}

// cgroupCPUQuota reads the container CPU limit (cgroup v2 cpu.max, falling
// back to v1 cfs_quota/cfs_period), rounded up to whole CPUs.
func cgroupCPUQuota() (int, bool) {
	if data, err := os.ReadFile("/sys/fs/cgroup/cpu.max"); err == nil {
		var quota, period int64
		if n, _ := fmt.Sscanf(string(data), "%d %d", &quota, &period); n == 2 && quota > 0 && period > 0 {
			return int((quota + period - 1) / period), true
		}
		return 0, false // "max" = no limit
	}
	qb, err1 := os.ReadFile("/sys/fs/cgroup/cpu/cpu.cfs_quota_us")
	pb, err2 := os.ReadFile("/sys/fs/cgroup/cpu/cpu.cfs_period_us")
	if err1 == nil && err2 == nil {
		quota, errQ := strconv.ParseInt(strings.TrimSpace(string(qb)), 10, 64)
		period, errP := strconv.ParseInt(strings.TrimSpace(string(pb)), 10, 64)
		if errQ == nil && errP == nil && quota > 0 && period > 0 {
			return int((quota + period - 1) / period), true
		}
	}
	return 0, false
}

// benchSmokeTolerance is how many times slower than the committed baseline a
// hot path may measure before the bench smoke fails. It is deliberately
// generous: CI machines are slower and noisier than the machine that wrote
// the baseline, and the smoke exists to catch order-of-magnitude regressions
// (losing the incremental profile costs ~670x on the ECT path), not
// percentage drift.
const benchSmokeTolerance = 8.0

// benchSmokeAllocTolerance is the allocs/op analogue. Allocation counts are
// far more stable than timings (they do not depend on machine speed), but a
// generous factor plus a small absolute slack still leaves room for Go
// runtime differences; the target is the order-of-magnitude regression of a
// reintroduced clone-per-replan, not single-allocation drift.
const (
	benchSmokeAllocTolerance = 4.0
	benchSmokeAllocSlack     = 16.0
)

// TestBenchSmokeAgainstBaseline reruns the committed hot-path measurements
// and fails when any of them regressed past the generous CI tolerances,
// in ns/op or in allocs/op. It is opt-in (BENCH_SMOKE=1) because timing
// assertions do not belong in the default test run.
func TestBenchSmokeAgainstBaseline(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") == "" {
		t.Skip("set BENCH_SMOKE=1 to compare hot paths against BENCH_batch.json")
	}
	data, err := os.ReadFile("BENCH_batch.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var baseline struct {
		Gomaxprocs  int                `json:"gomaxprocs"`
		NsPerOp     map[string]float64 `json:"ns_per_op"`
		AllocsPerOp map[string]float64 `json:"allocs_per_op"`
	}
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatalf("parsing BENCH_batch.json: %v", err)
	}
	// Parallel wall-clock baselines only transfer between machines with the
	// same parallel capacity: a pooled-parallel ns/op written on a 1-core
	// machine reads as a huge regression on the same code on 8 cores, and
	// vice versa. When the core counts disagree, the smoke must say it is
	// skipping those comparisons, not silently pass them.
	cpus := effectiveCPUs()
	coresMatch := baseline.Gomaxprocs == 0 || baseline.Gomaxprocs == cpus
	measured := measureBatchBaseline(t)
	for name, want := range baseline.NsPerOp {
		got, ok := measured[name]
		if !ok {
			t.Errorf("baseline entry %q is no longer measured; rewrite BENCH_batch.json", name)
			continue
		}
		t.Logf("%-48s %12.0f ns/op (baseline %12.0f, %.2fx)  %8.0f allocs/op (baseline %8.0f)",
			name, got.NsPerOp, want, got.NsPerOp/want, got.AllocsPerOp, baseline.AllocsPerOp[name])
		if name == "campaign_grid72_pooled_parallel" && !coresMatch {
			t.Logf("NOTICE: skipping %s ns/op comparison: baseline was recorded at gomaxprocs=%d but this runner has %d effective CPUs; parallel wall-clock does not transfer",
				name, baseline.Gomaxprocs, cpus)
		} else if got.NsPerOp > want*benchSmokeTolerance {
			t.Errorf("%s regressed: %.0f ns/op vs baseline %.0f (tolerance %.0fx)", name, got.NsPerOp, want, benchSmokeTolerance)
		}
		// Allocation counts are machine-independent; compare them even when
		// the ns comparison was skipped.
		if wantAllocs, ok := baseline.AllocsPerOp[name]; ok {
			if got.AllocsPerOp > wantAllocs*benchSmokeAllocTolerance+benchSmokeAllocSlack {
				t.Errorf("%s allocation regression: %.0f allocs/op vs baseline %.0f (tolerance %.0fx + %.0f)",
					name, got.AllocsPerOp, wantAllocs, benchSmokeAllocTolerance, benchSmokeAllocSlack)
			}
		}
	}

	// Campaign-throughput smoke: the runner with pooled simulators and one
	// worker per CPU must beat the sequential fresh-build execution of the
	// same 72-grid by a margin scaled to this machine's core count — half-
	// efficiency parallel scaling, capped at the 4x target (reached from 8
	// cores up, and already enforced at 2.2x on a 4-core CI runner). On a
	// single-core machine parallelism cannot win, so the floor only demands
	// that pooling is not a regression (noise margin included). Both sides
	// are measured in this process, so machine speed cancels out.
	fresh := measured["campaign_grid72_fresh_sequential"].NsPerOp
	pooled := measured["campaign_grid72_pooled_parallel"].NsPerOp
	if fresh <= 0 || pooled <= 0 {
		t.Fatalf("campaign throughput unmeasured: fresh=%.0f pooled=%.0f", fresh, pooled)
	}
	speedup := fresh / pooled
	floor := 0.55 * float64(cpus)
	if floor > 4 {
		floor = 4
	}
	if floor < 0.85 {
		floor = 0.85
	}
	if env := os.Getenv("BENCH_SMOKE_MIN_SPEEDUP"); env != "" {
		// Escape hatch for environments whose parallel capacity neither
		// GOMAXPROCS nor the cgroup quota describes.
		if v, err := strconv.ParseFloat(env, 64); err == nil && v > 0 {
			floor = v
		}
	}
	t.Logf("campaign 72-grid: fresh sequential %.1fms, pooled parallel %.1fms (speedup %.2fx, floor %.2fx at %d effective CPUs; baseline writer ran at gomaxprocs=%d)",
		fresh/1e6, pooled/1e6, speedup, floor, cpus, baseline.Gomaxprocs)
	if speedup < floor {
		t.Errorf("campaign runner speedup %.2fx fell below the %.2fx floor for %d effective CPUs", speedup, floor, cpus)
	}
	// The pooled campaign must also allocate strictly less than the fresh
	// one — the allocs-per-scenario collapse is machine-independent.
	freshAllocs := measured["campaign_grid72_fresh_sequential"].AllocsPerOp
	pooledAllocs := measured["campaign_grid72_pooled_parallel"].AllocsPerOp
	if pooledAllocs >= freshAllocs {
		t.Errorf("pooled campaign allocations (%.0f) did not undercut fresh-build allocations (%.0f)", pooledAllocs, freshAllocs)
	} else {
		t.Logf("campaign 72-grid allocations: fresh %.0f, pooled %.0f (%.0f saved per scenario)",
			freshAllocs, pooledAllocs, (freshAllocs-pooledAllocs)/72)
	}
}

// BenchmarkHeuristicSelection measures one heuristic selection step over
// candidate sets of increasing size.
func BenchmarkHeuristicSelection(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		n := n
		cands := make([]core.Candidate, n)
		ests := make([]core.Estimate, n)
		for i := range cands {
			cands[i] = core.Candidate{
				Job:       workload.Job{ID: i + 1, Submit: int64(i), Runtime: 100, Walltime: 300, Procs: 1 + i%16},
				OriginECT: int64(1000 + i*7%911),
			}
			ests[i] = core.Estimate{
				BestECT:      int64(500 + i*13%701),
				SecondECT:    int64(900 + i*17%501),
				BestOtherECT: int64(600 + i*11%401),
			}
		}
		for _, h := range core.Heuristics() {
			h := h
			b.Run(fmt.Sprintf("%s_n%d", h.Name(), n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = h.Select(cands, ests)
				}
			})
		}
	}
}

// BenchmarkReallocationPass measures one full reallocation pass (Algorithm 1
// and Algorithm 2) over a loaded two-cluster platform.
func BenchmarkReallocationPass(b *testing.B) {
	build := func() []*server.Server {
		left, _ := server.New(platform.ClusterSpec{Name: "left", Cores: 64, Speed: 1}, batch.CBF)
		right, _ := server.New(platform.ClusterSpec{Name: "right", Cores: 64, Speed: 1.4}, batch.CBF)
		blocker := workload.Job{ID: 100000, Submit: 0, Runtime: 50000, Walltime: 50000, Procs: 64}
		if err := left.Submit(blocker, 0, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := left.Scheduler().Advance(0); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			j := workload.Job{ID: i + 1, Submit: int64(i), Runtime: 300, Walltime: 900, Procs: 1 + i%16}
			if err := left.Submit(j, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
		return []*server.Server{left, right}
	}
	for _, alg := range []core.Algorithm{core.WithoutCancellation, core.WithCancellation} {
		alg := alg
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				servers := build()
				agent, err := core.NewAgent(servers, core.MCTMapping(), core.ReallocConfig{Algorithm: alg, Heuristic: core.MinMin()})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := agent.Reallocate(10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTraceGeneration measures the synthetic workload generator.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := workload.Scenario("apr", 0.05, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Campaign engine benchmarks ------------------------------------------

// grid72Configs is the 72-configuration A/B grid the campaign benchmarks
// replay (the same grid TestABDigest digests).
func grid72Configs() []gridrealloc.ScenarioConfig { return abConfigs() }

// runGrid72Fresh is the sequential fresh-build baseline: one brand-new
// simulator per scenario, no worker pool — the pre-runner execution model.
func runGrid72Fresh(b *testing.B, cfgs []gridrealloc.ScenarioConfig) {
	b.Helper()
	for _, cfg := range cfgs {
		if _, err := gridrealloc.RunScenario(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignGrid72 measures 72-configuration campaign throughput in
// three execution models: sequential with a fresh simulator per scenario
// (the old model), sequential on one pooled simulator (the reuse win alone),
// and the campaign runner with one pooled simulator per CPU (reuse plus
// parallelism — the spread against fresh_sequential is the campaign
// engine's wall-clock win). All three produce bit-identical results
// (TestSimulatorReuseDigest72Grid).
func BenchmarkCampaignGrid72(b *testing.B) {
	cfgs := grid72Configs()
	scenariosPerSec := func(b *testing.B, elapsed float64) {
		if elapsed > 0 {
			b.ReportMetric(float64(len(cfgs)*b.N)/elapsed, "scenarios/sec")
		}
	}
	b.Run("fresh_sequential", func(b *testing.B) {
		start := nowSeconds()
		for i := 0; i < b.N; i++ {
			runGrid72Fresh(b, cfgs)
		}
		scenariosPerSec(b, nowSeconds()-start)
	})
	b.Run("pooled_sequential", func(b *testing.B) {
		start := nowSeconds()
		for i := 0; i < b.N; i++ {
			sim := gridrealloc.NewSimulator()
			for _, cfg := range cfgs {
				if _, err := sim.RunScenario(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
		scenariosPerSec(b, nowSeconds()-start)
	})
	b.Run(fmt.Sprintf("pooled_parallel_%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		start := nowSeconds()
		for i := 0; i < b.N; i++ {
			if _, err := gridrealloc.RunScenarios(cfgs, runtime.GOMAXPROCS(0)); err != nil {
				b.Fatal(err)
			}
		}
		scenariosPerSec(b, nowSeconds()-start)
	})
}

// nowSeconds is a monotonic clock for custom throughput metrics.
func nowSeconds() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// BenchmarkHarnessCampaign measures randomized-scenario campaign throughput
// through the runner: a fixed batch of harness seeds, each checked by the
// full oracle (five simulations plus invariant verification per seed) on
// pooled simulators, with one worker versus one per CPU. This is the shape
// of the 500-seed gridfuzz campaign at benchmark-friendly size.
func BenchmarkHarnessCampaign(b *testing.B) {
	const seeds = 16
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			start := nowSeconds()
			for i := 0; i < b.N; i++ {
				runner.Stream(seeds, runner.Options{Workers: workers},
					func(j int, sim *core.Simulator) (struct{}, error) {
						spec := harness.Generate(uint64(5000 + j))
						return struct{}{}, harness.CheckOn(sim, spec)
					},
					func(j int, _ struct{}, err error) {
						if err != nil {
							b.Errorf("seed %d: %v", j, err)
						}
					})
			}
			if elapsed := nowSeconds() - start; elapsed > 0 {
				b.ReportMetric(float64(seeds*b.N)/elapsed, "scenarios/sec")
			}
		})
	}
}

// tinyReuseConfig is a scenario small enough that simulator construction is
// a visible share of the run: the reset-vs-fresh construction benchmarks and
// baseline keys use it.
func tinyReuseConfig(b testing.TB) gridrealloc.ScenarioConfig {
	b.Helper()
	jobs := make([]workload.Job, 0, 12)
	for i := 0; i < 12; i++ {
		jobs = append(jobs, workload.Job{ID: i + 1, Submit: int64(i * 60), Runtime: 300, Walltime: 600, Procs: 1 + i%8, User: 1})
	}
	trace, err := workload.NewTrace("tiny", jobs)
	if err != nil {
		b.Fatal(err)
	}
	return gridrealloc.ScenarioConfig{
		Scenario:      "jan",
		Heterogeneity: "heterogeneous",
		Policy:        "CBF",
		Trace:         trace,
		Algorithm:     "realloc-cancel",
		Heuristic:     "MinMin",
	}
}

// BenchmarkSimulatorReset measures one tiny scenario run with a fresh
// simulator per run versus on a reused one: the spread is the construction
// cost (schedulers, profiles, maps, event queue) the Reset path avoids, and
// the allocs/op gap is the pooled-state collapse.
func BenchmarkSimulatorReset(b *testing.B) {
	cfg := tinyReuseConfig(b)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gridrealloc.RunScenario(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		sim := gridrealloc.NewSimulator()
		for i := 0; i < b.N; i++ {
			if _, err := sim.RunScenario(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBaselineSimulation measures a complete baseline simulation of a
// 1% April slice (about 360 jobs).
func BenchmarkBaselineSimulation(b *testing.B) {
	trace, err := gridrealloc.GenerateScenario("apr", benchFraction, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
			Scenario: "apr", Heterogeneity: "heterogeneous", Policy: "CBF", Trace: trace,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
