package gridrealloc_test

import (
	"testing"

	gridrealloc "gridrealloc"
)

// TestQuickScenarioEndToEnd runs a small generated scenario with and without
// reallocation and sanity-checks the façade level results.
func TestQuickScenarioEndToEnd(t *testing.T) {
	trace, err := gridrealloc.GenerateScenario("jan", 0.01, 7)
	if err != nil {
		t.Fatalf("GenerateScenario: %v", err)
	}
	if trace.Len() == 0 {
		t.Fatal("generated trace is empty")
	}
	base := gridrealloc.ScenarioConfig{
		Scenario:      "jan",
		Heterogeneity: "heterogeneous",
		Policy:        "FCFS",
		Trace:         trace,
	}
	baseline, err := gridrealloc.RunScenario(base)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if got, want := len(baseline.Jobs), trace.Len(); got != want {
		t.Fatalf("baseline recorded %d jobs, want %d", got, want)
	}
	if baseline.CompletedJobs() != trace.Len() {
		t.Fatalf("baseline completed %d of %d jobs", baseline.CompletedJobs(), trace.Len())
	}
	if baseline.TotalReallocations != 0 {
		t.Fatalf("baseline performed %d reallocations, want 0", baseline.TotalReallocations)
	}

	withCfg := base
	withCfg.Algorithm = "realloc-cancel"
	withCfg.Heuristic = "MinMin"
	with, err := gridrealloc.RunScenario(withCfg)
	if err != nil {
		t.Fatalf("reallocation run: %v", err)
	}
	if with.CompletedJobs() != trace.Len() {
		t.Fatalf("reallocation run completed %d of %d jobs", with.CompletedJobs(), trace.Len())
	}

	cmp, err := gridrealloc.Compare(baseline, with)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if cmp.TotalJobs != trace.Len() {
		t.Fatalf("comparison covers %d jobs, want %d", cmp.TotalJobs, trace.Len())
	}
	if cmp.ImpactedPercent < 0 || cmp.ImpactedPercent > 100 {
		t.Fatalf("impacted percent out of range: %v", cmp.ImpactedPercent)
	}
	if cmp.RelativeResponseTime < 0 {
		t.Fatalf("negative relative response time: %v", cmp.RelativeResponseTime)
	}
	sum := gridrealloc.Summarize(with)
	if sum.Completed != trace.Len() {
		t.Fatalf("summary completed %d, want %d", sum.Completed, trace.Len())
	}
	t.Logf("impacted=%.2f%% earlier=%.2f%% relResp=%.2f reallocations=%d",
		cmp.ImpactedPercent, cmp.EarlierPercent, cmp.RelativeResponseTime, cmp.Reallocations)
}
