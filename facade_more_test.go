package gridrealloc_test

import (
	"strings"
	"testing"

	gridrealloc "gridrealloc"
)

func TestScenarioConfigValidation(t *testing.T) {
	if _, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	trace, err := gridrealloc.GenerateScenario("jan", 0.002, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := []gridrealloc.ScenarioConfig{
		{Scenario: "jan", Trace: trace, Policy: "LIFO"},
		{Scenario: "jan", Trace: trace, Algorithm: "warp"},
		{Scenario: "jan", Trace: trace, Algorithm: "realloc", Heuristic: "Oracle"},
		{Scenario: "jan", Trace: trace, Mapping: "Gravity"},
	}
	for i, cfg := range bad {
		if _, err := gridrealloc.RunScenario(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := gridrealloc.GenerateScenario("undecember", 0.01, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunScenarioGeneratesTraceWhenMissing(t *testing.T) {
	res, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
		Scenario:      "feb",
		TraceFraction: 0.002,
		Policy:        "FCFS",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) == 0 {
		t.Fatal("no jobs recorded for an auto-generated trace")
	}
	if res.CompletedJobs() != len(res.Jobs) {
		t.Fatalf("completed %d of %d", res.CompletedJobs(), len(res.Jobs))
	}
}

func TestRunScenarioCustomPlatform(t *testing.T) {
	trace, err := gridrealloc.GenerateScenario("jan", 0.002, 11)
	if err != nil {
		t.Fatal(err)
	}
	plat := gridrealloc.Platform{
		Name: "mini",
		Clusters: []gridrealloc.ClusterSpec{
			{Name: "one", Cores: 64, Speed: 1.0},
			{Name: "two", Cores: 32, Speed: 2.0},
		},
	}
	res, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
		Platform:  &plat,
		Trace:     trace,
		Policy:    "CBF",
		Algorithm: "realloc",
		Heuristic: "MaxGain",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlatformName != "mini" {
		t.Fatalf("platform name %q", res.PlatformName)
	}
	for _, rec := range res.SortedRecords() {
		if rec.Cluster != "one" && rec.Cluster != "two" {
			t.Fatalf("job %d ran on %q", rec.JobID, rec.Cluster)
		}
	}
}

func TestDefaultPlatformMapping(t *testing.T) {
	p := gridrealloc.DefaultPlatform("pwa-g5k", "heterogeneous")
	if !strings.Contains(p.Name, "pwa-g5k") || len(p.Clusters) != 3 {
		t.Fatalf("pwa platform = %+v", p)
	}
	p = gridrealloc.DefaultPlatform("mar", "homogeneous")
	if !strings.Contains(p.Name, "grid5000") {
		t.Fatalf("monthly platform = %+v", p)
	}
}

func TestNameListings(t *testing.T) {
	h := gridrealloc.HeuristicNames()
	if len(h) != 6 || h[0] != "Mct" || h[5] != "Sufferage" {
		t.Fatalf("heuristic names = %v", h)
	}
	s := gridrealloc.ScenarioNames()
	if len(s) != 7 || s[6] != "pwa-g5k" {
		t.Fatalf("scenario names = %v", s)
	}
}

func TestMappingPoliciesThroughFacade(t *testing.T) {
	trace, err := gridrealloc.GenerateScenario("jan", 0.002, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, mapping := range []string{"MCT", "Random", "RoundRobin"} {
		res, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
			Scenario: "jan",
			Trace:    trace,
			Policy:   "CBF",
			Mapping:  mapping,
		})
		if err != nil {
			t.Fatalf("%s: %v", mapping, err)
		}
		if res.CompletedJobs() != trace.Len() {
			t.Fatalf("%s: completed %d of %d", mapping, res.CompletedJobs(), trace.Len())
		}
	}
}
