package gridrealloc_test

import (
	"context"
	"errors"
	"testing"

	gridrealloc "gridrealloc"
)

// TestRunScenariosCtx checks the context-aware batch entry point: a live
// context reproduces RunScenarios exactly, and a cancelled one returns the
// cancellation with every scenario accounted for in the RunStats.
func TestRunScenariosCtx(t *testing.T) {
	cfgs := make([]gridrealloc.ScenarioConfig, 4)
	for i := range cfgs {
		cfgs[i] = gridrealloc.ScenarioConfig{
			Scenario: "jan", TraceFraction: 0.003, Seed: uint64(5 + i), Algorithm: "none",
		}
	}
	plain, err := gridrealloc.RunScenarios(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := gridrealloc.RunScenariosCtx(context.Background(), cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := gridrealloc.RunStats{Tasks: 4, Completed: 4}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
	for i := range cfgs {
		if results[i].Makespan != plain[i].Makespan || len(results[i].Jobs) != len(plain[i].Jobs) {
			t.Fatalf("scenario %d diverged between RunScenarios and RunScenariosCtx", i)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, stats, err = gridrealloc.RunScenariosCtx(ctx, cfgs, 2)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: err = %v", err)
	}
	if got := stats.Completed + stats.Failed + stats.Skipped; got != 4 {
		t.Fatalf("cancelled batch loses scenarios: %+v", stats)
	}
}

// TestRunScenariosStreamCtxCancelled checks the streaming variant's
// cancellation contract: emitted results stop, the stats account for every
// scenario, and the context error is returned.
func TestRunScenariosStreamCtxCancelled(t *testing.T) {
	cfgs := make([]gridrealloc.ScenarioConfig, 6)
	for i := range cfgs {
		cfgs[i] = gridrealloc.ScenarioConfig{
			Scenario: "jan", TraceFraction: 0.003, Seed: uint64(9 + i), Algorithm: "none",
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	stats, err := gridrealloc.RunScenariosStreamCtx(ctx, cfgs, 1, func(i int, res *gridrealloc.Result, err error) {
		emitted++
		cancel() // first completion interrupts the campaign
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if int64(emitted) != stats.Completed+stats.Failed {
		t.Fatalf("emitted %d, stats account %d", emitted, stats.Completed+stats.Failed)
	}
	if stats.Skipped == 0 {
		t.Fatalf("nothing skipped after first-emit cancellation: %+v", stats)
	}
}
