package gridrealloc_test

import (
	"strings"
	"testing"

	gridrealloc "gridrealloc"
)

// TestTraceWithoutPlatformRejected pins the façade bugfix: a custom trace
// with neither Scenario nor Platform must not silently run on the Grid'5000
// platform.
func TestTraceWithoutPlatformRejected(t *testing.T) {
	trace, err := gridrealloc.GenerateScenario("jan", 0.002, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = gridrealloc.RunScenario(gridrealloc.ScenarioConfig{Trace: trace, Policy: "FCFS"})
	if err == nil {
		t.Fatal("custom trace without Scenario/Platform accepted")
	}
	if !strings.Contains(err.Error(), "Platform") {
		t.Fatalf("error %q does not point at the missing platform", err)
	}
}

// TestCapacityScenariosEndToEnd runs the two capacity-dynamics scenarios
// under Algorithm 2, the acceptance configuration of the capacity-timeline
// subsystem, under both displaced-job policies.
func TestCapacityScenariosEndToEnd(t *testing.T) {
	for _, scenario := range []string{"jan-maint", "jan-outage"} {
		for _, policy := range []string{"kill", "requeue"} {
			res, err := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
				Scenario:      scenario,
				TraceFraction: 0.02,
				Policy:        "CBF",
				Algorithm:     "realloc-cancel",
				Heuristic:     "MinMin",
				OutagePolicy:  policy,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", scenario, policy, err)
			}
			if res.CompletedJobs() == 0 {
				t.Fatalf("%s/%s: no job completed", scenario, policy)
			}
			switch {
			case scenario == "jan-maint" && (res.OutageKills > 0 || res.OutageRequeues > 0):
				// Announced windows are planned around; nothing may be displaced.
				t.Fatalf("maintenance displaced jobs: kills=%d requeues=%d", res.OutageKills, res.OutageRequeues)
			case scenario == "jan-outage" && policy == "kill" && res.OutageRequeues > 0:
				t.Fatalf("kill policy requeued jobs: %d", res.OutageRequeues)
			case scenario == "jan-outage" && policy == "requeue" && res.OutageKills > 0:
				t.Fatalf("requeue policy killed jobs: %d", res.OutageKills)
			}
			// Every record stays well-formed: a completed job has a start,
			// and a killed job is still recorded as completed.
			for _, rec := range res.SortedRecords() {
				if rec.Completion >= 0 && rec.Start < 0 {
					t.Fatalf("%s/%s: job %d completed without starting", scenario, policy, rec.JobID)
				}
				if rec.Requeues > 0 && policy == "kill" {
					t.Fatalf("%s/%s: job %d requeued under the kill policy", scenario, policy, rec.JobID)
				}
			}
		}
	}
}

// TestOutageSeverityKnobs drives the explicit capacity window through the
// façade's plain-value fields, as a campaign severity sweep would.
func TestOutageSeverityKnobs(t *testing.T) {
	base := gridrealloc.ScenarioConfig{
		Scenario:      "jan",
		TraceFraction: 0.02,
		Policy:        "FCFS",
		Algorithm:     "realloc-cancel",
		Heuristic:     "MinMin",
	}
	static, err := gridrealloc.RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	outage := base
	outage.OutageCluster = "bordeaux"
	outage.OutageStartSeconds = 12000
	outage.OutageDurationSeconds = 20000
	outage.OutageSeverity = 1.0
	outage.OutagePolicy = "requeue"
	hit, err := gridrealloc.RunScenario(outage)
	if err != nil {
		t.Fatal(err)
	}
	if hit.OutageRequeues == 0 {
		t.Fatal("full bordeaux outage displaced no running job")
	}
	if hit.Makespan <= 0 || hit.CompletedJobs() == 0 {
		t.Fatalf("outage run degenerate: makespan=%d completed=%d", hit.Makespan, hit.CompletedJobs())
	}
	if static.MeanResponseTime() >= hit.MeanResponseTime() {
		t.Fatalf("outage did not hurt: static %.1f vs outage %.1f", static.MeanResponseTime(), hit.MeanResponseTime())
	}
	// A milder announced window on the same span must not displace anyone.
	maint := outage
	maint.OutageSeverity = 0.5
	maint.OutageAnnounced = true
	soft, err := gridrealloc.RunScenario(maint)
	if err != nil {
		t.Fatal(err)
	}
	if soft.OutageKills != 0 || soft.OutageRequeues != 0 {
		t.Fatalf("announced window displaced jobs: kills=%d requeues=%d", soft.OutageKills, soft.OutageRequeues)
	}
	// Unknown knob values surface as errors.
	bad := outage
	bad.OutagePolicy = "shrug"
	if _, err := gridrealloc.RunScenario(bad); err == nil {
		t.Fatal("unknown outage policy accepted")
	}
	bad = outage
	bad.OutageCluster = "atlantis"
	if _, err := gridrealloc.RunScenario(bad); err == nil {
		t.Fatal("unknown outage cluster accepted")
	}
}
