package gridrealloc

import "gridrealloc/internal/runner"

// ScenarioTask exposes scenarioTask to the external digest tests, which
// drive it through runner.StreamCtx directly to inject faults between
// configurations (quarantine digest proof) without widening the public API.
func ScenarioTask(cfgs []ScenarioConfig) runner.TaskFunc[*Result] {
	return scenarioTask(cfgs)
}
