package gridrealloc_test

// Quarantine-equivalence harness: the runner's fault model promises that a
// simulator which panicked is discarded — never reused — and its worker
// continues on a fresh one. This test proves the promise the same strong
// way reuse_test.go proves the Reset contract: per-configuration digests
// over the full 72-configuration A/B grid, with panicking, poisoning tasks
// injected mid-campaign.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	gridrealloc "gridrealloc"
	"gridrealloc/internal/core"
	"gridrealloc/internal/runner"
)

// TestQuarantineDigest72Grid runs the 72-configuration grid on a single
// worker whose tasks panic (after poisoning their simulator) at three
// indexes spread across the campaign. Poison simulates a broken Reset —
// every later run on that simulator perturbs its result — so the only way
// the other 69 configurations can match their fresh-simulator digests
// bit-for-bit is if the runner really replaced the simulator after each
// panic instead of returning it to the pool.
func TestQuarantineDigest72Grid(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the 72-configuration grid twice")
	}
	cfgs := abConfigs()
	fresh := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		res, err := gridrealloc.RunScenario(cfg)
		if err != nil {
			t.Fatalf("fresh %s/%s/%s/%s/%s: %v", cfg.Scenario, cfg.Heterogeneity, cfg.Policy, cfg.Algorithm, cfg.Heuristic, err)
		}
		fresh[i] = configDigest(cfg, res)
	}

	// Three faults spread over the campaign: each quarantines the worker's
	// simulator, so the chain runs on four distinct simulators in turn.
	faulted := map[int]bool{11: true, 37: true, 61: true}
	task := gridrealloc.ScenarioTask(cfgs)
	poisoning := func(ctx context.Context, i int, sim *core.Simulator) (*gridrealloc.Result, error) {
		if faulted[i] {
			sim.Poison()
			panic(fmt.Sprintf("injected fault at config %d", i))
		}
		return task(ctx, i, sim)
	}

	results := make([]*gridrealloc.Result, len(cfgs))
	taskErrs := make([]error, len(cfgs))
	stats, cerr := runner.StreamCtx(context.Background(), len(cfgs),
		runner.Options{Workers: 1}, poisoning,
		func(i int, res *gridrealloc.Result, err error) {
			results[i] = res
			taskErrs[i] = err
		})
	if cerr != nil {
		t.Fatalf("campaign cancelled: %v", cerr)
	}

	for i, cfg := range cfgs {
		if faulted[i] {
			var te *runner.TaskError
			if !errors.As(taskErrs[i], &te) || !errors.Is(te, runner.ErrTaskPanic) {
				t.Fatalf("config %d: injected panic not recovered into a TaskError: %v", i, taskErrs[i])
			}
			continue
		}
		if taskErrs[i] != nil {
			t.Fatalf("config %d failed alongside the injected faults: %v", i, taskErrs[i])
		}
		if d := configDigest(cfg, results[i]); d != fresh[i] {
			t.Fatalf("config %d (%s/%s/%s/%s/%s) diverged after a quarantine upstream:\n  fresh      %s\n  quarantine %s",
				i, cfg.Scenario, cfg.Heterogeneity, cfg.Policy, cfg.Algorithm, cfg.Heuristic, fresh[i], d)
		}
	}

	want := runner.RunStats{
		Tasks: int64(len(cfgs)), Completed: int64(len(cfgs) - 3), Failed: 3,
		RecoveredPanics: 3, DiscardedSims: 3,
	}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
}

// TestPoisonPerturbsResults is the self-test of the proof above: Poison
// must actually make a simulator's results diverge, otherwise the
// quarantine digest test would pass vacuously even if quarantine broke.
func TestPoisonPerturbsResults(t *testing.T) {
	cfgs := abConfigs()[:1]
	clean, err := gridrealloc.RunScenario(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	sim := core.NewSimulator()
	sim.Poison()
	poisonedRes, _, err := runner.RunCtx(context.Background(), 1, runner.Options{Workers: 1},
		func(ctx context.Context, i int, _ *core.Simulator) (*gridrealloc.Result, error) {
			return gridrealloc.ScenarioTask(cfgs)(ctx, i, sim)
		})
	if err != nil {
		t.Fatal(err)
	}
	if configDigest(cfgs[0], poisonedRes[0]) == configDigest(cfgs[0], clean) {
		t.Fatal("a poisoned simulator produced the clean digest; the quarantine proof is vacuous")
	}
}
