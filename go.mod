module gridrealloc

go 1.24
