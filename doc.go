// Package gridrealloc reproduces the system studied in "Analysis of Tasks
// Reallocation in a Dedicated Grid Environment" (Caniou, Charrier, Desprez,
// INRIA RR-7226, 2010): a multi-cluster grid in which a GridRPC-style
// meta-scheduler maps jobs onto batch-managed clusters and periodically
// reallocates waiting jobs between clusters to absorb walltime
// over-estimation and submission bursts.
//
// The root package is a façade over the internal packages; it is the import
// path downstream users need for the common workflow:
//
//	trace, _ := gridrealloc.GenerateScenario("apr", 0.05, 42)
//	baseline, _ := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
//	    Scenario: "apr", Heterogeneity: "heterogeneous", Policy: "CBF",
//	    Trace: trace,
//	})
//	realloc, _ := gridrealloc.RunScenario(gridrealloc.ScenarioConfig{
//	    Scenario: "apr", Heterogeneity: "heterogeneous", Policy: "CBF",
//	    Trace: trace, Algorithm: "realloc-cancel", Heuristic: "MinMin",
//	})
//	cmp, _ := gridrealloc.Compare(baseline, realloc)
//	fmt.Printf("relative response time: %.2f\n", cmp.RelativeResponseTime)
//
// The full experiment campaign of the paper (Tables 2 through 17) is driven
// by the experiment package through cmd/experiments; the individual building
// blocks (event engine, batch schedulers, meta-scheduling agent, heuristics,
// metrics) live under internal/ and are documented there.
//
// # Capacity dynamics
//
// Beyond the paper's static platforms, every cluster can carry a capacity
// timeline of bounded windows: announced maintenance windows the batch
// scheduler plans around, and unannounced outages that strike mid-run and
// displace running jobs (killed or requeued per ScenarioConfig.OutagePolicy).
// Scenario names with a "-maint"/"-outage" suffix ("jan-maint",
// "jan-outage") pair a burstier variant of the monthly workload with a
// default window on the first cluster; the OutageCluster, OutageStartSeconds,
// OutageDurationSeconds, OutageSeverity and OutageAnnounced fields place an
// explicit window instead, which is how campaigns sweep outage severity.
// With no capacity events configured, simulation results are bit-identical
// to the static simulator.
//
// # Performance
//
// The batch scheduler is indexed and incremental: jobs are addressed through
// ID maps, the next internal event comes from min-heaps, the running-jobs
// availability profile is maintained as jobs start/finish instead of being
// rebuilt per query, and queue re-planning is deferred until the next
// observation so bursts of mutations (Algorithm 2 cancels every waiting job
// back-to-back) pay for one re-plan. Profiles deep enough to matter carry
// bucketed free-core summaries (per-bucket max/min over fixed segment
// buckets, maintained exactly by every mutation): slot searches hop whole
// buckets that cannot fit a request and swallow whole buckets that satisfy
// it everywhere, which generalizes the zero-prefix firstFree hint and makes
// deep-queue and saturated-cluster searches effectively sublinear; shallow
// profiles stay below the activation threshold and pay nothing. Per-run
// queue and allocation records come from block arenas (sim.Arena), and each
// run's result digest is folded into an order-independent accumulator
// (sim.DigestAcc) at the instant each record finalizes, so campaign digests
// need no post-pass over the records. The meta-scheduler takes one
// availability snapshot per cluster per reallocation sweep and reuses it
// across all candidate jobs and heuristics. A from-scratch reference
// implementation remains available behind the explicit invalidation hooks;
// GRIDREALLOC_DEBUG_PROFILE=1 cross-checks the incremental state against it
// on every re-plan. BENCH_batch.json is the committed baseline of the hot
// paths; regenerate it with
//
//	WRITE_BENCH_BASELINE=1 go test -run TestWriteBenchBatchBaseline .
//
// whenever scheduler internals change.
//
// Two invariants of the profile engine matter to future scale-out work.
// First, buffer reuse: the scheduler re-plans into double-buffered plan
// profiles and pools its queue/allocation records, so the steady-state event
// loop and re-plan path allocate nothing — but a published plan profile is
// frozen the moment an estimate snapshot references it, and every mutation
// after that point copies or swaps buffers. Code holding an
// EstimateSnapshot may therefore assume its answers never change; code
// adding scheduler mutations must go through the publish paths rather than
// touching the published profile. Second, the deterministic merge: a
// reallocation sweep may fan per-cluster snapshotting and estimation over a
// bounded worker pool (core.SetSweepParallelism), and correctness relies on
// each worker touching exactly one cluster's scheduler and writing only
// per-cluster result slots, so the merged outcome is bit-identical to the
// sequential sweep regardless of scheduling order (verified across the
// 72-configuration digest grid by TestABDigestParallelSweep and under the
// race detector in CI). Sharding work across clusters must preserve that
// ownership discipline.
//
// # Campaign engine
//
// Campaigns — grids of many configurations, severity sweeps, fuzz batches —
// run through internal/runner: a bounded worker pool in which every worker
// owns one pooled simulator, reused across all scenarios the worker
// executes, with results streaming to the caller as they complete. The
// façade exposes it as Simulator (one pooled context), RunScenarios (an
// index-ordered batch) and RunScenariosStream (streaming); cmd/experiments,
// cmd/gridsim's multi-scenario mode, cmd/gridfuzz and the A/B digest tests
// all route through it.
//
// The reuse contract: every layer of one simulation run — sim.Engine,
// batch.Scheduler, server.Server, the core agent and driver — has a Reset
// path that returns it to its freshly-constructed state while keeping its
// buffers (profiles, heaps, pools, indexes, scratch matrices), and a reset
// component is observationally identical to a fresh one. What survives a
// reset is capacity only, never content: no job, reservation, revealed
// outage, sequence number or counter crosses runs (caller configuration
// such as the outage policy and step limits is reapplied per run by the
// driver). Reuse is proven digest-identical to fresh construction over the
// 72-configuration grid (TestSimulatorReuseDigest72Grid), over random
// harness scenarios (TestSimulatorReuseDigestHarnessSeeds), and on every
// fuzz scenario — harness.CheckOn compares a fresh reference run against
// pooled reruns as part of the oracle.
//
// Inside one run, reallocation sweeps skip work that provably cannot change
// the outcome: a pass with no waiting job anywhere is skipped outright
// (still counted in ReallocationEvents), a cluster whose scheduler state
// version did not move since the previous pass is not re-listed (the cached
// queue view is exact — the version increments on every submission,
// cancellation, start, early finish, reveal or invalidation), and snapshot
// completion estimates are memoised per job shape while the published plan
// is unchanged, reusable whenever the cached start lies at or after the
// query's lower bound. All three are behaviour-neutral by construction and
// covered by the digest grids and the fuzz oracle.
//
// # Fault model
//
// Campaigns are not all-or-nothing. The context-aware entry points
// (RunScenariosCtx, RunScenariosStreamCtx, experiment.RunCtx, and
// runner.RunCtx/StreamCtx underneath) degrade gracefully along four paths:
//
//   - Cancellation: when the context is cancelled (the CLIs wire SIGINT
//     through signal.NotifyContext), workers finish their in-flight
//     scenario, stop claiming new ones and drain completely — no goroutine
//     leaks, every completed result still emitted, and RunStats accounting
//     for every task as completed, failed or skipped. cmd/experiments,
//     cmd/gridsim -scenario and cmd/gridfuzz all print what they completed
//     before exiting non-zero.
//
//   - Deadlines and retries: runner.Options.TaskTimeout bounds each task
//     attempt, and errors marked runner.Transient are retried up to
//     MaxRetries times with linear backoff. Timeouts and retries are
//     counted in RunStats and surfaced through metrics.HealthOf, which
//     grades a campaign clean, recovered or degraded.
//
//   - Panic quarantine: a panicking task is recovered into a structured
//     *runner.TaskError (index, scenario seed, stack) and the campaign
//     continues — but the worker's pooled simulator is discarded and
//     replaced fresh. The quarantine rule is absolute: a panicked simulator
//     never re-enters the pool, because the panic may have interrupted a
//     mutation mid-flight, leaving state outside the Reset contract.
//
//   - Fault injection: internal/faultinject derives a seeded fault plan
//     (panics, transient errors, slow tasks, poisoned-Reset simulators)
//     and installs it into runner workers through a test hook;
//     harness.CheckFaultTolerance asserts that under any plan, non-faulted
//     scenarios stay bit-identical to a fault-free campaign, transient
//     retries converge, RunStats match the plan counter for counter, and
//     no goroutines leak (gridfuzz -faults 50 -seed 42 runs it from the
//     CLI; the same seed replays the same faults). The quarantine digest
//     proof (TestQuarantineDigest72Grid) injects poisoning panics into the
//     72-configuration grid and requires the surviving 69 digests to match
//     fresh runs bit-for-bit.
//
// # Service
//
// cmd/gridd makes the paper's deployed architecture real instead of
// in-process only: a long-running HTTP/JSON daemon (internal/service)
// exposing the restricted cluster-frontal API — POST /v1/submit, /v1/cancel,
// /v1/estimate and GET /v1/list, the observe-and-resubmit surface the
// paper's middleware is limited to — plus POST /v1/campaigns, which runs a
// scenario batch through the campaign engine and streams one NDJSON result
// line per scenario as it completes, ending with a stats trailer. Virtual
// time is per cluster and only moves forward: requests carry their own
// "now" and are clamped to the cluster's current time.
//
// Concurrent campaigns share one bounded pool of pooled simulators through
// the service lease manager (service.LeaseManager, a runner.SimSource):
// Acquire blocks until a slot frees, Release returns the instance for
// reuse, and Discard — taken after any recovered panic — retires the
// instance forever while returning its capacity slot, so the PR 8
// quarantine rule holds across tenants: a poisoned simulator is never
// re-leased, no matter which campaign leases next. The lease table,
// per-instance health state and quarantine counters are visible on /stats.
//
// The daemon is hardened for hostile traffic: admission control bounds
// running and pending campaigns and sheds the excess with 429 +
// Retry-After instead of queueing without bound; every request runs under
// a deadline propagated as a context into runner.RunCtx; bodies are capped
// by http.MaxBytesReader and decoded strictly (unknown fields and trailing
// garbage rejected); a panicking handler answers 500 without taking the
// process down; and every campaign stream write carries its own deadline,
// so a slow reader is cut off rather than pinning a worker. /healthz and
// /stats expose lease state, admission counters, per-cluster
// server.RequestLoad and p50/p99 latency histograms (metrics.Histogram)
// for submit, estimate and campaign serving.
//
// SIGTERM or SIGINT starts a graceful drain: admission stops (503), queued
// waiters are released, in-flight campaigns get half the drain budget to
// finish before being cancelled — partial results and a trailer marked
// draining still flush — and gridd exits 0 on a clean drain, 3 when the
// drain was degraded. harness.CheckServiceFaultTolerance is the service
// leg of the fault oracle: under injected panics, slow tasks and
// mid-stream disconnects, non-faulted campaign digests served over HTTP
// are bit-identical to in-process runs, trailer stats match the fault
// plan exactly, and leakcheck finds zero goroutines after drain.
//
// # Randomized scenario harness
//
// Beyond the paper's fixed campaign, internal/harness draws arbitrary
// scenarios from the whole configuration space — random traces (raw jobs
// and random SiteProfiles), random platforms of 1–16 clusters with mixed
// sizes and speeds, multi-window capacity timelines mixing maintenance and
// outages, every (policy, algorithm, heuristic, outage policy) combination,
// random mapping policies, reallocation periods and sweep parallelism — and
// checks an invariant oracle over each: digest determinism across repeated
// runs and across sweep worker counts, incremental-profile consistency
// against a from-scratch rebuild, reservations bounded by the capacity
// ceiling, requeue seniority ordering, job conservation (every submitted
// job finishes exactly once), SWF round-trips, and zero-capacity inertness.
// The oracle is exposed three ways: the FuzzScenario and FuzzReadSWF native
// fuzz targets (with committed seed corpora), the cmd/gridfuzz CLI
// (gridfuzz -n 500 -seed 42 -parallel 8), and per-run verification through
// core.Config.VerifyInvariants. A failing scenario is always a single
// uint64 seed; reproduce it with
//
//	gridfuzz -replay <seed>
//
// Every future sharding/batching/async refactor is expected to pass a
// gridfuzz campaign in addition to the fixed-grid digests.
//
// # Static invariants
//
// The runtime contracts above — Reset completeness, state-version
// observability, pooled-buffer lifetimes, bit-for-bit determinism, sweep
// ownership, snapshot reference balance — are enforced at the source level
// by internal/lint, a dependency-free suite of seven analyzers following
// the golang.org/x/tools go/analysis shape. The dataflow-capable members
// share a lightweight per-function CFG (internal/lint/cfg.go) and a
// program-wide static call graph (internal/lint/callgraph.go):
//
//   - directives: validates the //gridlint: control comments themselves —
//     unknown (typo'd) directive words are rejected, and suppression
//     directives (keep-across-reset, allow-retain, unordered-ok,
//     ref-transferred) must carry a prose justification. A misspelled
//     directive never fails; it silently disarms the check it was meant to
//     configure, which is why this pass exists.
//
//   - resetcomplete: every field of a type marked //gridlint:resettable
//     (batch.Scheduler, sim.Engine, server.Server, core.Agent, the core
//     simulation driver) must be assigned in its Reset method or carry a
//     //gridlint:keep-across-reset directive explaining why stale state is
//     harmless. Coverage follows same-receiver helper methods and plain
//     functions that receive the value as an argument, and walks embedded
//     structs field by field under their promoted names. A new field that
//     Reset forgets is a pooled-simulator cross-contamination bug the
//     72-grid digest may not catch.
//
//   - stateversion: methods of types carrying a stateVersion counter that
//     write middleware-observable state (fields marked
//     //gridlint:observable) must bump the counter on every path — directly,
//     through a same-receiver method, or through a plain helper function —
//     or be annotated //gridlint:stateversion-bumped-by-caller. The
//     directive is verified from the other side too: the call graph is
//     walked and every static caller of a bumped-by-caller method must
//     itself bump (or carry the directive). A missed bump silently disables
//     the dirty-cluster sweep-skipping of the campaign engine.
//
//   - poollife: values returned by //gridlint:pooled functions (Advance
//     notes, plan buffers) must not be retained in struct fields, package
//     variables or escaping closures without a copy; intentional ownership
//     transfers carry //gridlint:allow-retain with a justification.
//
//   - determinism: forbids time.Now/Since/Until and the global math/rand
//     functions anywhere in the simulation, requires every map iteration to
//     be annotated //gridlint:unordered-ok (asserting order-insensitivity),
//     and rejects package-level values of //gridlint:stateful types such as
//     MappingPolicy — the fuzz oracle's first real catch.
//
//   - sweepowner: inside worker callbacks passed to //gridlint:worker
//     functions (core.Agent.forEachCluster, runner.Stream), slices marked
//     //gridlint:cluster-indexed may only be indexed by the worker's owned
//     cluster index (or a value derived from it by plain copy). Cross-slot
//     reads, whole-slice iteration, and stray indexes reached through
//     helpers or closures are flagged. This is the data-race gate for the
//     sharding work: one worker owns one cluster slot.
//
//   - refbalance: path-sensitively pairs snapshot acquisition
//     (//gridlint:ref-acquire — batch.Scheduler.EstimateSnapshot and
//     EstimateSnapshotInto) with release (//gridlint:ref-release —
//     EstimateSnapshot.Release) over each function's CFG: leaks on any
//     path, definite double releases, overwrites and reacquires while a
//     reference is held, and escapes (returns or stores) without a
//     //gridlint:ref-transferred handoff annotation are flagged. Error
//     paths are tracked through the acquire's error result, and deferred
//     releases (including method values and closing literals) count on
//     every exit path.
//
// Run the suite locally with
//
//	go run ./cmd/gridlint ./...
//
// which prints file:line:col diagnostics and exits non-zero when the tree
// is dirty; CI runs it on every push and surfaces the lines as PR
// annotations through a problem matcher. gridlint -json emits the same
// diagnostics as a JSON array for tooling, and gridlint -suppressions
// counts the suppression directives in the tree against the committed
// LINT_SUPPRESSIONS budget — CI fails when a count grows past its budget,
// so the suppression total only ratchets down. The analyzers are
// dependency-free by design (a custom loader type-checks the module with
// go/types), so `go vet -vettool=$(which gridlint) ./...` is not wired up
// today — the vettool protocol needs golang.org/x/tools' unitchecker;
// because the analyzers already follow the analysis.Analyzer shape,
// migrating is mechanical if the module ever takes on that dependency.
// Fixture-based tests (internal/lint/testdata) pin each rule with flagged
// and accepted cases, and TestSuiteCleanOnRealTree keeps the real tree at
// zero diagnostics.
package gridrealloc
