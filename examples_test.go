package gridrealloc_test

// Smoke coverage for the example programs: each is built and executed
// exactly as its doc comment advertises, so a façade change that breaks the
// documented workflows fails the test suite instead of the first user.

import (
	"context"
	"os/exec"
	"testing"
	"time"
)

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples run full simulations")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	for _, name := range []string{"quickstart", "heterogeneous", "customheuristic", "tracedriven"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			out, err := exec.CommandContext(ctx, "go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
}
