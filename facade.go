package gridrealloc

import (
	"context"

	"gridrealloc/internal/core"
	"gridrealloc/internal/metrics"
	"gridrealloc/internal/platform"
	"gridrealloc/internal/runner"
	"gridrealloc/internal/scenario"
	"gridrealloc/internal/workload"
)

// Re-exported result and metric types so that downstream users only need the
// root import path for the common workflow.
type (
	// Result is the outcome of one simulation run (per-job records, number
	// of reallocations, makespan, per-cluster request load).
	Result = core.Result
	// JobRecord is the per-job outcome inside a Result.
	JobRecord = core.JobRecord
	// Comparison holds the paper's four metrics of a run against its
	// baseline.
	Comparison = metrics.Comparison
	// Summary aggregates user-facing statistics of a single run.
	Summary = metrics.Summary
	// Trace is an ordered collection of jobs replayed by the simulator.
	Trace = workload.Trace
	// Job is a rigid parallel job (submit time, processors, runtime,
	// walltime on the reference cluster).
	Job = workload.Job
	// Platform is a named set of clusters.
	Platform = platform.Platform
	// ClusterSpec describes one cluster (name, cores, relative speed).
	ClusterSpec = platform.ClusterSpec
	// RunStats counts the fault-tolerance events of one campaign run
	// through RunScenariosCtx or RunScenariosStreamCtx (completed, failed
	// and skipped tasks, recovered panics, retries, timeouts, quarantined
	// simulators).
	RunStats = runner.RunStats
)

// ScenarioConfig describes one simulation run through the façade. All fields
// are strings or plain values so the façade can be driven directly from
// flags, configuration files or JSON (the gridd campaign endpoint decodes
// the same type); the resolution into the typed core configuration lives in
// internal/scenario, shared with the service layer.
type ScenarioConfig = scenario.Config

// GenerateScenario produces the synthetic trace of one of the paper's seven
// scenarios. Fraction scales the job counts of Table 1 (1.0 reproduces them
// exactly); the seed makes the trace reproducible.
func GenerateScenario(scenario string, fraction float64, seed uint64) (*Trace, error) {
	return workload.Scenario(workload.ScenarioName(scenario), fraction, seed)
}

// DefaultPlatform returns the platform the paper pairs with the named
// scenario, in the requested variant ("homogeneous" or "heterogeneous").
// Unrecognised variant strings fall back to homogeneous here to keep the
// signature error-free; RunScenario validates the same string strictly and
// rejects typos.
func DefaultPlatform(scenario, heterogeneity string) Platform {
	het, err := platform.ParseHeterogeneity(heterogeneity)
	if err != nil {
		het = platform.Homogeneous
	}
	return platform.ForScenario(scenario, het)
}

// Simulator is a pooled simulation context for running many scenarios back
// to back: schedulers, availability profiles, event queues and sweep
// matrices are reset and reused between RunScenario calls instead of rebuilt,
// and a run on a reused Simulator is bit-identical to a run on a fresh one.
// A Simulator is not safe for concurrent use; create one per goroutine (or
// use RunScenarios, which owns one per worker).
type Simulator struct {
	inner *core.Simulator
}

// NewSimulator returns an empty pooled simulation context.
func NewSimulator() *Simulator { return &Simulator{inner: core.NewSimulator()} }

// RunScenario runs one simulation according to cfg on the pooled context and
// returns its result.
func (s *Simulator) RunScenario(cfg ScenarioConfig) (*Result, error) {
	runCfg, err := scenario.BuildRunConfig(cfg)
	if err != nil {
		return nil, err
	}
	return s.inner.Run(runCfg)
}

// RunScenario runs one simulation according to cfg and returns its result.
// Callers running many scenarios should prefer a Simulator (or RunScenarios)
// so successive runs reuse the pooled simulation state.
func RunScenario(cfg ScenarioConfig) (*Result, error) {
	return NewSimulator().RunScenario(cfg)
}

// RunScenarios runs a batch of scenario configurations over the campaign
// runner: a bounded pool of workers (0 = one per CPU), each owning one
// pooled Simulator reused across all its runs. Results are returned in
// cfgs order. Every scenario executes even after a failure; the returned
// error is the one with the lowest index, independent of worker count.
// Results are bit-identical to running each configuration alone.
func RunScenarios(cfgs []ScenarioConfig, workers int) ([]*Result, error) {
	res, _, err := RunScenariosCtx(context.Background(), cfgs, workers)
	return res, err
}

// RunScenariosCtx is RunScenarios under a context: cancelling ctx stops new
// scenarios from starting, lets in-flight ones finish, and returns the
// partial results alongside RunStats saying how many completed, failed and
// were skipped. The returned error is the lowest-index scenario error, or a
// cancellation error when the campaign was cut short without one.
func RunScenariosCtx(ctx context.Context, cfgs []ScenarioConfig, workers int) ([]*Result, RunStats, error) {
	return runner.RunCtx(ctx, len(cfgs), runner.Options{Workers: workers}, scenarioTask(cfgs))
}

// RunScenariosStream is RunScenarios delivering each result to emit as it
// completes (in completion order, serialised) instead of collecting them:
// the form long campaigns use to report progress while later scenarios are
// still running. Indexes refer to cfgs; err is per-scenario.
func RunScenariosStream(cfgs []ScenarioConfig, workers int, emit func(i int, res *Result, err error)) {
	RunScenariosStreamCtx(context.Background(), cfgs, workers, emit)
}

// RunScenariosStreamCtx is RunScenariosStream under a context: completed
// scenarios are still emitted after cancellation (partial results, in
// completion order), and the returned RunStats account for every scenario
// as completed, failed or skipped. The error is ctx's error when the
// campaign was cancelled, nil otherwise; per-scenario errors go to emit.
func RunScenariosStreamCtx(ctx context.Context, cfgs []ScenarioConfig, workers int, emit func(i int, res *Result, err error)) (RunStats, error) {
	return runner.StreamCtx(ctx, len(cfgs), runner.Options{Workers: workers}, scenarioTask(cfgs), emit)
}

// scenarioTask adapts a configuration batch to one runner task: resolve the
// i-th façade config and run it on the worker's pooled simulator. All batch
// entry points share it so they can never drift apart. The context is
// accepted for the runner's task signature; a single simulation run is the
// unit of cancellation, so it runs to completion once started.
func scenarioTask(cfgs []ScenarioConfig) runner.TaskFunc[*Result] {
	return func(_ context.Context, i int, sim *core.Simulator) (*Result, error) {
		runCfg, err := scenario.BuildRunConfig(cfgs[i])
		if err != nil {
			return nil, err
		}
		return sim.Run(runCfg)
	}
}

// Compare computes the paper's four evaluation metrics of a reallocation run
// against its no-reallocation baseline on the same trace and platform.
func Compare(baseline, with *Result) (Comparison, error) {
	return metrics.Compare(baseline, with)
}

// Summarize aggregates user-facing statistics of a single run (mean and
// median response time, mean wait time, makespan, number of reallocations).
func Summarize(r *Result) Summary {
	return metrics.Summarize(r)
}

// HeuristicNames lists the six reallocation heuristics in the order of the
// paper's tables.
func HeuristicNames() []string {
	names := make([]string, 0, 6)
	for _, h := range core.Heuristics() {
		names = append(names, h.Name())
	}
	return names
}

// ScenarioNames lists the seven workload scenarios of the paper.
func ScenarioNames() []string {
	out := make([]string, 0, 7)
	for _, s := range workload.ScenarioNames() {
		out = append(out, string(s))
	}
	return out
}
