package gridrealloc_test

// A/B digest harness: runs a 72-configuration grid of simulations and folds
// every per-job outcome into a single SHA-256 digest. Comparing the digest
// across two checkouts (or before/after a refactor) proves bit-identical
// simulation results far more cheaply than archiving full result dumps.
//
//	go test -run TestABDigest -v .
//
// The digest is sensitive to every job's start, completion, cluster,
// reallocation count and kill flag, plus the run-level makespan and
// reallocation totals. It is NOT asserted against a committed constant:
// trace-generator changes legitimately shift it (and are recorded in
// CHANGES.md); the harness exists so such shifts are deliberate, observable
// and attributable.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	gridrealloc "gridrealloc"
)

// abConfigs enumerates the 72-configuration grid: 3 scenarios x 2 platform
// variants x 2 batch policies x (baseline + 5 algorithm/heuristic pairs).
func abConfigs() []gridrealloc.ScenarioConfig {
	type algPair struct{ alg, heur string }
	pairs := []algPair{
		{"none", ""},
		{"realloc", "Mct"},
		{"realloc", "MinMin"},
		{"realloc", "MaxGain"},
		{"realloc-cancel", "Mct"},
		{"realloc-cancel", "MinMin"},
	}
	var out []gridrealloc.ScenarioConfig
	for _, scenario := range []string{"jan", "apr", "pwa-g5k"} {
		for _, het := range []string{"homogeneous", "heterogeneous"} {
			for _, policy := range []string{"FCFS", "CBF"} {
				for _, p := range pairs {
					out = append(out, gridrealloc.ScenarioConfig{
						Scenario:      scenario,
						Heterogeneity: het,
						Policy:        policy,
						TraceFraction: 0.01,
						Algorithm:     p.alg,
						Heuristic:     p.heur,
					})
				}
			}
		}
	}
	return out
}

// digestResult folds one run's observable outcome into the hash.
func digestResult(h interface{ Write(p []byte) (int, error) }, cfg gridrealloc.ScenarioConfig, res *gridrealloc.Result) {
	fmt.Fprintf(h, "cfg %s/%s/%s/%s/%s\n", cfg.Scenario, cfg.Heterogeneity, cfg.Policy, cfg.Algorithm, cfg.Heuristic)
	fmt.Fprintf(h, "run makespan=%d moves=%d events=%d\n", res.Makespan, res.TotalReallocations, res.ReallocationEvents)
	for _, rec := range res.SortedRecords() {
		fmt.Fprintf(h, "job %d submit=%d start=%d completion=%d cluster=%s procs=%d realloc=%d killed=%v\n",
			rec.JobID, rec.Submit, rec.Start, rec.Completion, rec.Cluster, rec.Procs, rec.Reallocations, rec.Killed)
	}
}

// TestABDigest runs the grid through the campaign runner (pooled simulators,
// one worker per CPU) and logs the digest, folded in configuration order so
// the value is independent of completion order and worker count. It fails
// only when a simulation errors; digest comparison is done by the human (or
// CI job) diffing the logged value across two builds.
func TestABDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("A/B digest replays 72 simulations")
	}
	cfgs := abConfigs()
	results, err := gridrealloc.RunScenarios(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for i, cfg := range cfgs {
		digestResult(h, cfg, results[i])
	}
	t.Logf("A/B digest over %d configurations: %s", len(cfgs), hex.EncodeToString(h.Sum(nil)))
}
