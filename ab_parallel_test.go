package gridrealloc_test

// Determinism A/B for the parallel reallocation sweep: the same
// 72-configuration grid as TestABDigest, replayed once with the per-cluster
// fan-out forced off and once forced on for every sweep size. The two
// digests must be bit-identical — the fan-out is a wall-clock optimisation
// with an order-independent merge, never a behavioural change.

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	gridrealloc "gridrealloc"
	"gridrealloc/internal/core"
)

func TestABDigestParallelSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism A/B replays 144 simulations")
	}
	digest := func(label string) string {
		h := sha256.New()
		for _, cfg := range abConfigs() {
			res, err := gridrealloc.RunScenario(cfg)
			if err != nil {
				t.Fatalf("%s %s/%s/%s/%s/%s: %v", label, cfg.Scenario, cfg.Heterogeneity, cfg.Policy, cfg.Algorithm, cfg.Heuristic, err)
			}
			digestResult(h, cfg, res)
		}
		return hex.EncodeToString(h.Sum(nil))
	}
	core.SetSweepParallelism(1)
	defer func() {
		core.SetSweepParallelism(0)
		core.SetSweepParallelThreshold(0)
	}()
	seq := digest("sequential")
	core.SetSweepParallelism(8)
	core.SetSweepParallelThreshold(1)
	par := digest("parallel")
	if seq != par {
		t.Fatalf("parallel sweep diverged from sequential:\nsequential %s\nparallel   %s", seq, par)
	}
	t.Logf("parallel sweep digest over %d configurations matches sequential: %s", len(abConfigs()), seq)
}
